//! Batched inference: a sharded prediction cache plus an order-preserving
//! micro-batch executor over any [`PredictRow`] model.
//!
//! Configuration spaces are finite, so both serving traffic and
//! model-guided search revisit the same feature vectors constantly; a
//! cache turns a tree-walk (or a k-NN scan) into one hash lookup. The
//! cache is sharded — each shard is its own `Mutex<HashMap>` picked by
//! key hash — so concurrent threads rarely contend on the same lock.
//!
//! The executor splits a request's rows into fixed-size micro-batches and
//! fans them across cores with the vendored rayon, whose parallel map is
//! order preserving (results are stitched back in input order), so
//! response position `i` always answers request row `i`.
//!
//! This module lives in `lam-core` (not the serving crate) because it has
//! two independent consumers: `lam-serve`'s `/predict` path and
//! `lam-tune`'s model-guided search strategies, which score whole
//! configuration spaces through the same executor.

use crate::predict::PredictRow;
use lam_obs::{Counter, Histogram};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Cache-key for one feature row: the exact bit patterns of its floats
/// (no epsilon grouping — only a bit-identical row is "the same query").
/// Public because it *is* the workspace's definition of "the same
/// configuration row" — the tuner's parameter lattice indexes rows with
/// the identical convention.
pub fn row_key(row: &[f64]) -> Box<[u64]> {
    row.iter().map(|v| v.to_bits()).collect()
}

/// FNV-1a over the key bits, for shard selection.
fn key_hash(key: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in key {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Hit/miss counters of a [`PredictionCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the model.
    pub misses: u64,
}

/// Default total entry cap of a [`PredictionCache`]. The configuration
/// spaces this workspace enumerates stay in the thousands; the cap only
/// exists so arbitrary client-supplied rows (fuzzing, jittered floats)
/// cannot grow a long-running server without bound.
pub const DEFAULT_MAX_ENTRIES: usize = 1 << 20;

/// A sharded feature-vector → prediction cache, capped at a fixed entry
/// budget (inserts beyond a full shard are dropped; predictions are then
/// simply recomputed, so the cap degrades throughput, never correctness).
pub struct PredictionCache {
    shards: Vec<Mutex<HashMap<Box<[u64]>, f64>>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PredictionCache {
    /// Cache with `shards` independent lock domains (clamped to ≥ 1) and
    /// the [`DEFAULT_MAX_ENTRIES`] budget.
    pub fn new(shards: usize) -> Self {
        Self::with_capacity(shards, DEFAULT_MAX_ENTRIES)
    }

    /// Cache with an explicit total entry budget, split across shards.
    pub fn with_capacity(shards: usize, max_entries: usize) -> Self {
        let shards = shards.max(1);
        Self {
            per_shard_cap: max_entries.div_ceil(shards).max(1),
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &[u64]) -> &Mutex<HashMap<Box<[u64]>, f64>> {
        &self.shards[(key_hash(key) % self.shards.len() as u64) as usize]
    }

    /// Cached prediction for `row`, if present. Counts a hit or miss.
    pub fn get(&self, row: &[f64]) -> Option<f64> {
        let key = row_key(row);
        let found = self
            .shard(&key)
            .lock()
            .expect("cache poisoned")
            .get(&key)
            .copied();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Record a computed prediction. A full shard drops the insert
    /// (bounded memory beats caching one more row).
    pub fn insert(&self, row: &[f64], prediction: f64) {
        let key = row_key(row);
        let mut shard = self.shard(&key).lock().expect("cache poisoned");
        if shard.len() < self.per_shard_cap || shard.contains_key(&key) {
            shard.insert(key, prediction);
        }
    }

    /// Number of cached feature vectors.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache poisoned").len())
            .sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// Outcome of one batched prediction call.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOutcome {
    /// One prediction per request row, in request order.
    pub predictions: Vec<f64>,
    /// How many rows were answered from the cache.
    pub cache_hits: u64,
}

/// Pre-resolved global-metrics handles of one [`BatchEngine`], interned
/// once at engine construction (label lookup never runs on the predict
/// path). The `scope` label tells engines apart: serving engines use
/// `workload/kind`, shared/anonymous engines use `"shared"`.
struct EngineMetrics {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    batch_rows: Arc<Histogram>,
    queue_wait_ns: Arc<Histogram>,
    lookup_ns: Arc<Histogram>,
    predict_ns: Arc<Histogram>,
}

/// Timings and tallies of one executed micro-batch. Measured inside the
/// (possibly parallel) execution but recorded into the global registry
/// only after the parallel section: concurrent `fetch_add`s from rayon
/// workers onto the same counters bounce their cache lines, and that
/// contention would be charged to the very request being measured.
struct MicroBatchObs {
    queue_wait_ns: u64,
    rows: u64,
    lookup_ns: Option<u64>,
    predict_ns: Option<u64>,
    hits: u64,
    misses: u64,
}

impl EngineMetrics {
    /// Flush one micro-batch's measurements (serial, uncontended).
    fn record(&self, obs: &MicroBatchObs) {
        self.queue_wait_ns.record(obs.queue_wait_ns);
        self.batch_rows.record(obs.rows);
        self.hits.add(obs.hits);
        self.misses.add(obs.misses);
        if let Some(ns) = obs.lookup_ns {
            self.lookup_ns.record(ns);
        }
        if let Some(ns) = obs.predict_ns {
            self.predict_ns.record(ns);
        }
    }

    fn for_scope(scope: &str) -> Self {
        let reg = lam_obs::global();
        let labels = [("scope", scope)];
        Self {
            hits: reg.counter(
                "lam_cache_hits_total",
                "Prediction-cache lookups answered from the cache.",
                &labels,
            ),
            misses: reg.counter(
                "lam_cache_misses_total",
                "Prediction-cache lookups that fell through to the model.",
                &labels,
            ),
            batch_rows: reg.histogram("lam_batch_rows", "Rows per executed micro-batch.", &labels),
            queue_wait_ns: reg.histogram(
                "lam_batch_queue_wait_ns",
                "Delay between request arrival at the engine and micro-batch execution start.",
                &labels,
            ),
            lookup_ns: reg.histogram(
                "lam_batch_phase_ns",
                "Micro-batch phase duration, nanoseconds.",
                &[("scope", scope), ("phase", "cache-lookup")],
            ),
            predict_ns: reg.histogram(
                "lam_batch_phase_ns",
                "Micro-batch phase duration, nanoseconds.",
                &[("scope", scope), ("phase", "predict")],
            ),
        }
    }
}

/// Order-preserving micro-batch executor over a [`PredictionCache`].
pub struct BatchEngine {
    cache: PredictionCache,
    micro_batch: usize,
    metrics: EngineMetrics,
}

/// Micro-batch size balancing per-batch overhead against load balance;
/// also the default shard count.
pub const DEFAULT_MICRO_BATCH: usize = 64;

impl Default for BatchEngine {
    fn default() -> Self {
        Self::new(DEFAULT_MICRO_BATCH, DEFAULT_MICRO_BATCH)
    }
}

impl BatchEngine {
    /// Engine with explicit micro-batch size and cache shard count,
    /// reporting metrics under the anonymous `scope="shared"` label.
    pub fn new(micro_batch: usize, shards: usize) -> Self {
        Self::scoped(micro_batch, shards, "shared")
    }

    /// Engine whose metrics carry `scope` as their label (serving engines
    /// pass `workload/kind` so cache and batch telemetry is per-model).
    /// Label interning happens here, once — never on the predict path.
    pub fn scoped(micro_batch: usize, shards: usize, scope: &str) -> Self {
        Self {
            cache: PredictionCache::new(shards),
            micro_batch: micro_batch.max(1),
            metrics: EngineMetrics::for_scope(scope),
        }
    }

    /// The underlying cache.
    pub fn cache(&self) -> &PredictionCache {
        &self.cache
    }

    /// Predict one micro-batch through the cache, counting hits locally
    /// (not from the global counters, which concurrent requests advance
    /// too).
    ///
    /// Misses are gathered by reference and handed to the model in **one**
    /// [`PredictRow::predict_rows_by_ref`] call, so models with a batch
    /// fast path (arena-compiled trees evaluate misses block-wise) see the
    /// whole miss set instead of a per-row callback. Duplicate rows within
    /// one micro-batch are computed together in that call; they produce
    /// identical values, so the cache still converges to one entry.
    /// `enqueued` is the engine-entry instant when observability is on
    /// (`None` when recording is disabled — then no clocks are read and
    /// no metrics are touched, the baseline the overhead bench measures).
    /// The returned [`MicroBatchObs`] is the caller's to record, *after*
    /// leaving any parallel section.
    fn predict_micro_batch(
        &self,
        model: &dyn PredictRow,
        batch: &[Vec<f64>],
        enqueued: Option<Instant>,
    ) -> (Vec<f64>, u64, Option<MicroBatchObs>) {
        let started = enqueued.map(|t| {
            let now = Instant::now();
            ((now - t).as_nanos() as u64, now)
        });
        let mut hits = 0u64;
        let mut predictions = vec![0.0f64; batch.len()];
        let mut miss_idx: Vec<usize> = Vec::new();
        let mut miss_rows: Vec<&[f64]> = Vec::new();
        for (i, row) in batch.iter().enumerate() {
            match self.cache.get(row) {
                Some(y) => {
                    hits += 1;
                    predictions[i] = y;
                }
                None => {
                    miss_idx.push(i);
                    miss_rows.push(row);
                }
            }
        }
        let mut obs = started.map(|(queue_wait_ns, _)| MicroBatchObs {
            queue_wait_ns,
            rows: batch.len() as u64,
            lookup_ns: None,
            predict_ns: None,
            hits,
            misses: miss_rows.len() as u64,
        });
        if !miss_rows.is_empty() {
            // Phase timings are only taken on miss-bearing micro-batches,
            // where model compute dwarfs the clock reads. The all-hit fast
            // path pays a single `Instant::now` (the queue-wait read above)
            // — `Instant::now` costs ~44ns here, several times a counter
            // add, and would dominate the <2% overhead budget otherwise.
            // One `now` both closes the lookup phase and opens predict.
            let predict_start = started.map(|(_, start)| {
                let now = Instant::now();
                if let Some(obs) = obs.as_mut() {
                    obs.lookup_ns = Some((now - start).as_nanos() as u64);
                }
                now
            });
            let computed = model.predict_rows_by_ref(&miss_rows);
            for ((&i, row), y) in miss_idx.iter().zip(&miss_rows).zip(computed) {
                self.cache.insert(row, y);
                predictions[i] = y;
            }
            if let (Some(t), Some(obs)) = (predict_start, obs.as_mut()) {
                obs.predict_ns = Some(t.elapsed().as_nanos() as u64);
            }
        }
        (predictions, hits, obs)
    }

    /// Predict every row of the request through the cache, fanning
    /// micro-batches across cores. Response order matches request order.
    ///
    /// Requests that fit in one micro-batch skip the parallel executor
    /// entirely — its fixed entry cost would dominate a single cache
    /// lookup.
    pub fn predict(&self, model: &dyn PredictRow, rows: &[Vec<f64>]) -> BatchOutcome {
        // One flag read and (when on) one clock read per request; every
        // per-micro-batch record site keys off this `Option`.
        let enqueued = lam_obs::enabled().then(Instant::now);
        if rows.len() <= self.micro_batch {
            let (predictions, cache_hits, obs) = self.predict_micro_batch(model, rows, enqueued);
            if let Some(obs) = obs {
                self.metrics.record(&obs);
            }
            return BatchOutcome {
                predictions,
                cache_hits,
            };
        }
        let batches: Vec<&[Vec<f64>]> = rows.chunks(self.micro_batch).collect();
        let parts: Vec<(Vec<f64>, u64, Option<MicroBatchObs>)> = batches
            .par_iter()
            .map(|batch| self.predict_micro_batch(model, batch, enqueued))
            .collect();
        for (_, _, obs) in &parts {
            if let Some(obs) = obs {
                self.metrics.record(obs);
            }
        }
        let cache_hits = parts.iter().map(|(_, h, _)| h).sum();
        let predictions: Vec<f64> = parts.into_iter().flat_map(|(p, _, _)| p).collect();
        BatchOutcome {
            predictions,
            cache_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic toy model: y = 2*x0 + x1.
    struct Toy;
    impl PredictRow for Toy {
        fn predict_row(&self, x: &[f64]) -> f64 {
            2.0 * x[0] + x.get(1).copied().unwrap_or(0.0)
        }
    }

    fn rows(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64, (i % 7) as f64]).collect()
    }

    #[test]
    fn batched_predictions_preserve_request_order() {
        let engine = BatchEngine::new(8, 4);
        let rows = rows(1000);
        let out = engine.predict(&Toy, &rows);
        assert_eq!(out.predictions.len(), rows.len());
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(out.predictions[i], Toy.predict_row(row), "row {i}");
        }
    }

    #[test]
    fn second_pass_is_all_cache_hits() {
        let engine = BatchEngine::new(16, 8);
        let rows = rows(300);
        let cold = engine.predict(&Toy, &rows);
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(engine.cache().len(), rows.len());
        let warm = engine.predict(&Toy, &rows);
        assert_eq!(warm.cache_hits, rows.len() as u64);
        assert_eq!(warm.predictions, cold.predictions);
    }

    #[test]
    fn cache_distinguishes_bitwise_different_rows() {
        let cache = PredictionCache::new(4);
        cache.insert(&[1.0, 2.0], 10.0);
        assert_eq!(cache.get(&[1.0, 2.0]), Some(10.0));
        assert_eq!(cache.get(&[1.0, 2.0000000000000004]), None);
        assert_eq!(cache.get(&[1.0]), None);
        // -0.0 and 0.0 differ bitwise: distinct cache entries.
        cache.insert(&[0.0], 1.0);
        assert_eq!(cache.get(&[-0.0]), None);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
    }

    #[test]
    fn capacity_bounds_entries_without_breaking_predictions() {
        let cache = PredictionCache::with_capacity(2, 4);
        for i in 0..100 {
            cache.insert(&[i as f64], i as f64);
        }
        assert!(cache.len() <= 4, "len {}", cache.len());
        // Overwriting an existing key still works at capacity.
        let kept: Vec<f64> = (0..100)
            .map(|i| i as f64)
            .filter(|&x| cache.get(&[x]).is_some())
            .collect();
        let k = kept[0];
        cache.insert(&[k], -1.0);
        assert_eq!(cache.get(&[k]), Some(-1.0));
    }

    #[test]
    fn empty_request_is_fine() {
        let engine = BatchEngine::default();
        let out = engine.predict(&Toy, &[]);
        assert!(out.predictions.is_empty());
        assert_eq!(out.cache_hits, 0);
        assert!(engine.cache().is_empty());
    }

    #[test]
    fn scoped_engine_feeds_the_global_metrics_registry() {
        // A unique scope keeps this test independent of every other
        // engine in the process.
        let scope = "batch-metrics-selftest";
        let engine = BatchEngine::scoped(8, 4, scope);
        let rows = rows(20);
        engine.predict(&Toy, &rows);
        engine.predict(&Toy, &rows);
        let reg = lam_obs::global();
        let labels = [("scope", scope)];
        let hits = reg.counter("lam_cache_hits_total", "", &labels).get();
        let misses = reg.counter("lam_cache_misses_total", "", &labels).get();
        assert_eq!(misses, 20, "first pass all misses");
        assert_eq!(hits, 20, "second pass all hits");
        let sizes = reg.histogram("lam_batch_rows", "", &labels).snapshot();
        // 20 rows in 8-row micro-batches = 3 batches per pass.
        assert_eq!(sizes.count(), 6);
        assert_eq!(sizes.max, 8);
        let waits = reg
            .histogram("lam_batch_queue_wait_ns", "", &labels)
            .snapshot();
        assert_eq!(waits.count(), 6);
        // Phase timings are only taken on miss-bearing micro-batches
        // (the all-hit fast path skips the extra clock reads), so only
        // the first pass's 3 micro-batches show up here.
        let lookups = reg
            .histogram(
                "lam_batch_phase_ns",
                "",
                &[("scope", scope), ("phase", "cache-lookup")],
            )
            .snapshot();
        assert_eq!(lookups.count(), 3);
    }

    #[test]
    fn duplicate_rows_in_one_request_hit_after_first_compute() {
        let engine = BatchEngine::new(1, 2);
        let rows = vec![vec![5.0, 1.0]; 10];
        // One worker thread makes the hit count deterministic: the first
        // occurrence computes, the other nine hit.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let out = pool.install(|| engine.predict(&Toy, &rows));
        assert_eq!(out.cache_hits, 9);
        assert!(out.predictions.iter().all(|&y| y == 11.0));
        assert_eq!(engine.cache().len(), 1);
    }
}
