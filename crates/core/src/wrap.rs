//! Adapter letting an [`AnalyticalModel`] participate anywhere a
//! [`Regressor`] is expected (ensembles, evaluation harnesses, baselines).
//! Fitting is a no-op — analytical models need no training data, which is
//! the whole point of the hybrid approach.

use lam_analytical::traits::AnalyticalModel;
use lam_data::Dataset;
use lam_ml::model::{FitError, Regressor};

/// An analytical model wrapped as a (training-free) regressor.
pub struct AnalyticalRegressor {
    model: Box<dyn AnalyticalModel>,
}

impl AnalyticalRegressor {
    /// Wrap a model.
    pub fn new(model: Box<dyn AnalyticalModel>) -> Self {
        Self { model }
    }

    /// Borrow the wrapped model.
    pub fn inner(&self) -> &dyn AnalyticalModel {
        self.model.as_ref()
    }
}

impl Regressor for AnalyticalRegressor {
    fn fit(&mut self, _data: &Dataset) -> Result<(), FitError> {
        Ok(()) // analytical models are training-free
    }

    fn predict_row(&self, x: &[f64]) -> f64 {
        self.model.predict(x)
    }

    fn name(&self) -> &'static str {
        "analytical"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lam_analytical::traits::ConstantModel;

    #[test]
    fn wraps_and_predicts() {
        let mut r = AnalyticalRegressor::new(Box::new(ConstantModel(3.5)));
        let d = Dataset::new(vec!["x".into()], vec![1.0], vec![9.0]).unwrap();
        r.fit(&d).unwrap();
        assert_eq!(r.predict_row(&[0.0]), 3.5);
        // Fit does not change the analytical prediction.
        assert_eq!(r.predict(&d), vec![3.5]);
    }

    #[test]
    fn fit_is_noop_even_on_empty_data() {
        let mut r = AnalyticalRegressor::new(Box::new(ConstantModel(1.0)));
        let empty = Dataset::empty(vec!["x".into()]);
        assert!(r.fit(&empty).is_ok());
    }
}
