//! # lam-core
//!
//! The paper's contribution: a **hybrid performance model** that couples an
//! analytical model with a machine-learning regressor using the two
//! ensemble mechanisms of Fig 4:
//!
//! 1. **Stacking** — the analytical model's prediction is appended to the
//!    feature vector of the ML model ("the analytical model predictions are
//!    regarded as additional features for the machine learning model");
//! 2. **Bagging-style aggregation** (optional) — the analytical and
//!    stacked-model predictions are aggregated into the final prediction.
//!    This step is "supplementary and its benefits depend on how
//!    representative the analytical models are" — it is disabled for the
//!    Fig 7 study, where the analytical model does not capture parallelism.
//!
//! [`evaluate`] provides the experiment protocol of §VII: uniformly sample
//! a training window, fit pure-ML and hybrid models, score MAPE on the
//! held-out remainder, repeat over trials.

//!
//! [`workload`] abstracts one application scenario (configuration space,
//! feature projection, oracle, analytical model) behind a single trait so
//! the whole pipeline — dataset generation, evaluation, figure binaries —
//! is generic over scenarios. [`catalog`] erases that trait's associated
//! `Config` type behind the object-safe [`catalog::DynWorkload`] and keeps
//! a process-wide [`catalog::WorkloadCatalog`] of named scenario
//! descriptors with memoized datasets — the layer that lets serving code
//! pick up new scenarios from one registration call instead of an enum
//! edit. [`predict`] exposes the object-safe read-only [`PredictRow`]
//! surface serving layers share across threads, and [`batch`] the sharded
//! prediction cache + order-preserving micro-batch executor that both the
//! serving layer and the autotuner score models through.

pub mod batch;
pub mod catalog;
pub mod evaluate;
pub mod hybrid;
pub mod predict;
pub mod workload;
pub mod wrap;

pub use batch::{BatchEngine, BatchOutcome, PredictionCache};
pub use catalog::{CatalogError, DynWorkload, WorkloadCatalog, WorkloadEntry};
pub use evaluate::{
    evaluate_model, evaluate_workload, EvaluationConfig, SeriesPoint, TrialOutcome,
};
pub use hybrid::{HybridConfig, HybridModel};
pub use predict::PredictRow;
pub use workload::Workload;
pub use wrap::AnalyticalRegressor;
