//! Property-based tests for the hybrid framework.

use lam_analytical::traits::AnalyticalModel;
use lam_core::hybrid::{HybridConfig, HybridModel};
use lam_core::wrap::AnalyticalRegressor;
use lam_data::Dataset;
use lam_ml::model::Regressor;
use lam_ml::tree::{DecisionTreeRegressor, TreeParams};
use proptest::prelude::*;

/// A linear "analytical model" with arbitrary coefficients.
#[derive(Clone)]
struct LinearAm {
    w0: f64,
    w1: f64,
    bias: f64,
}

impl AnalyticalModel for LinearAm {
    fn predict(&self, x: &[f64]) -> f64 {
        self.bias + self.w0 * x[0] + self.w1 * x[1]
    }
}

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (6usize..40).prop_flat_map(|n| {
        (
            proptest::collection::vec(-50.0f64..50.0, n * 2),
            proptest::collection::vec(1.0f64..500.0, n),
        )
            .prop_map(|(features, response)| {
                Dataset::new(vec!["a".into(), "b".into()], features, response).unwrap()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// When the analytical model IS the truth, the hybrid with aggregation
    /// weight 0 reproduces it exactly on any input.
    #[test]
    fn perfect_am_with_zero_weight_is_exact(d in dataset_strategy(), w0 in -2.0f64..2.0, w1 in -2.0f64..2.0, bias in 1.0f64..10.0) {
        let am = LinearAm { w0, w1, bias };
        // Response = AM prediction, guaranteed positive by construction?
        // Rebuild response from the AM to make it the exact truth.
        let response: Vec<f64> = (0..d.len()).map(|i| am.predict(d.row(i))).collect();
        prop_assume!(response.iter().all(|&y| y.is_finite()));
        let data = Dataset::new(
            d.feature_names().to_vec(),
            d.features().to_vec(),
            response,
        ).unwrap();
        let mut h = HybridModel::new(
            Box::new(am.clone()),
            Box::new(DecisionTreeRegressor::new(TreeParams::default(), 1)),
            HybridConfig { aggregate: true, stacked_weight: 0.0, log_feature: false },
        );
        h.fit(&data).unwrap();
        for i in 0..data.len() {
            let p = h.predict_row(data.row(i));
            prop_assert!((p - data.response()[i]).abs() < 1e-9);
        }
    }

    /// Aggregation output always lies between the AM and stacked
    /// predictions.
    #[test]
    fn aggregation_is_convex(d in dataset_strategy(), w in 0.0f64..1.0) {
        let am = LinearAm { w0: 1.0, w1: -0.5, bias: 3.0 };
        let mut h = HybridModel::new(
            Box::new(am.clone()),
            Box::new(DecisionTreeRegressor::new(TreeParams::default(), 2)),
            HybridConfig { aggregate: true, stacked_weight: w, log_feature: false },
        );
        h.fit(&d).unwrap();
        // Pure stacked variant for reference.
        let mut stacked_only = HybridModel::new(
            Box::new(am),
            Box::new(DecisionTreeRegressor::new(TreeParams::default(), 2)),
            HybridConfig::default(),
        );
        stacked_only.fit(&d).unwrap();
        for i in 0..d.len() {
            let x = d.row(i);
            let agg = h.predict_row(x);
            let am_p = h.analytical_prediction(x);
            let st_p = stacked_only.predict_row(x);
            let lo = am_p.min(st_p) - 1e-9;
            let hi = am_p.max(st_p) + 1e-9;
            prop_assert!(agg >= lo && agg <= hi, "agg {agg} outside [{lo}, {hi}]");
        }
    }

    /// The augmented dataset always gains exactly one column and preserves
    /// the response.
    #[test]
    fn augment_shape(d in dataset_strategy()) {
        let h = HybridModel::new(
            Box::new(LinearAm { w0: 0.1, w1: 0.2, bias: 1.0 }),
            Box::new(DecisionTreeRegressor::new(TreeParams::default(), 0)),
            HybridConfig::default(),
        );
        let aug = h.augment(&d);
        prop_assert_eq!(aug.n_features(), d.n_features() + 1);
        prop_assert_eq!(aug.response(), d.response());
    }

    /// The analytical-regressor adapter is unaffected by what it is
    /// "fitted" on.
    #[test]
    fn analytical_regressor_fit_invariant(d in dataset_strategy(), x0 in -5.0f64..5.0, x1 in -5.0f64..5.0) {
        let mut r = AnalyticalRegressor::new(Box::new(LinearAm { w0: 2.0, w1: 1.0, bias: 0.5 }));
        let before = r.predict_row(&[x0, x1]);
        r.fit(&d).unwrap();
        prop_assert_eq!(r.predict_row(&[x0, x1]), before);
    }
}
