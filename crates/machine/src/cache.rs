//! Set-associative LRU cache simulator.
//!
//! Trace-driven: feed it byte addresses, it reports hits and misses. Used to
//! validate the closed-form miss models in `lam-analytical` on small grids
//! and by the cache-behaviour benches.

use crate::arch::CacheLevel;

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// Line present.
    Hit,
    /// Line absent; it has been filled (possibly evicting another line).
    Miss,
}

/// A single-level, set-associative, write-allocate LRU cache.
///
/// Tags are stored per set in recency order (index 0 = most recently used);
/// with the small associativities of real caches a `Vec` scan beats fancier
/// structures.
#[derive(Debug, Clone)]
pub struct Cache {
    line_bytes: u64,
    n_sets: u64,
    ways: usize,
    /// `sets[s]` = tags in recency order, most recent first.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build from a [`CacheLevel`] description.
    pub fn from_level(level: &CacheLevel) -> Self {
        let ways = if level.associativity == 0 {
            level.n_lines() as usize
        } else {
            level.associativity as usize
        };
        Self::new(level.size_bytes, level.line_bytes, ways)
    }

    /// Build from raw geometry. `size` must be a multiple of `line * ways`.
    pub fn new(size_bytes: u64, line_bytes: u64, ways: usize) -> Self {
        assert!(line_bytes > 0 && size_bytes > 0 && ways > 0);
        let n_lines = size_bytes / line_bytes;
        assert!(
            n_lines >= ways as u64,
            "cache smaller than one full set ({n_lines} lines, {ways} ways)"
        );
        let n_sets = (n_lines / ways as u64).max(1);
        Self {
            line_bytes,
            n_sets,
            ways,
            sets: vec![Vec::with_capacity(ways); n_sets as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// Number of sets.
    pub fn n_sets(&self) -> u64 {
        self.n_sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Access the byte at `addr`; returns hit or miss and updates LRU state.
    pub fn access(&mut self, addr: u64) -> AccessResult {
        let line = addr / self.line_bytes;
        let set_idx = (line % self.n_sets) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            // Move to front (most recently used).
            let tag = set.remove(pos);
            set.insert(0, tag);
            self.hits += 1;
            AccessResult::Hit
        } else {
            if set.len() == self.ways {
                set.pop(); // evict LRU
            }
            set.insert(0, line);
            self.misses += 1;
            AccessResult::Miss
        }
    }

    /// Access a whole element (may straddle a line boundary → two accesses;
    /// the common aligned case issues one).
    pub fn access_element(&mut self, addr: u64, element_bytes: u64) -> AccessResult {
        let first = self.access(addr);
        let last_byte = addr + element_bytes - 1;
        if last_byte / self.line_bytes != addr / self.line_bytes {
            // Straddles: the second access's result is subsumed; report miss
            // if either missed.
            let second = self.access(last_byte);
            if first == AccessResult::Miss || second == AccessResult::Miss {
                return AccessResult::Miss;
            }
        }
        first
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; 0 when nothing has been accessed.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Forget contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }

    /// Lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(1024, 64, 2);
        assert_eq!(c.access(0), AccessResult::Miss);
        assert_eq!(c.access(8), AccessResult::Hit); // same line
        assert_eq!(c.access(64), AccessResult::Miss); // next line
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        // 2-way, want a single set: size = 2 lines.
        let mut c = Cache::new(128, 64, 2);
        assert_eq!(c.n_sets(), 1);
        c.access(0); // A
        c.access(64); // B  (LRU: B, A)
        c.access(0); // touch A (LRU: A, B)
        c.access(128); // C evicts B
        assert_eq!(c.access(0), AccessResult::Hit); // A survived
        assert_eq!(c.access(64), AccessResult::Miss); // B was evicted
    }

    #[test]
    fn set_mapping_conflicts() {
        // 2 sets, 1 way: addresses 0 and 128 map to set 0 and conflict;
        // 64 maps to set 1.
        let mut c = Cache::new(128, 64, 1);
        assert_eq!(c.n_sets(), 2);
        c.access(0);
        assert_eq!(c.access(64), AccessResult::Miss);
        assert_eq!(c.access(0), AccessResult::Hit);
        c.access(128); // conflicts with 0
        assert_eq!(c.access(0), AccessResult::Miss);
    }

    #[test]
    fn hit_plus_miss_equals_accesses() {
        let mut c = Cache::new(4096, 64, 4);
        for i in 0..1000u64 {
            c.access(i * 24);
        }
        assert_eq!(c.hits() + c.misses(), c.accesses());
        assert_eq!(c.accesses(), 1000);
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let mut c = Cache::new(4096, 64, 4); // 64 lines
        let lines = 32u64;
        for pass in 0..3 {
            for l in 0..lines {
                let r = c.access(l * 64);
                if pass > 0 {
                    assert_eq!(r, AccessResult::Hit, "pass {pass} line {l}");
                }
            }
        }
    }

    #[test]
    fn working_set_beyond_capacity_thrashes_lru() {
        // Cyclic sweep over 2x capacity with true LRU → every access misses.
        let mut c = Cache::new(1024, 64, 16); // fully assoc, 16 lines
        let lines = 32u64;
        for _ in 0..3 {
            for l in 0..lines {
                c.access(l * 64);
            }
        }
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn element_straddling_lines() {
        let mut c = Cache::new(1024, 64, 2);
        // Element at byte 60, 8 bytes → straddles lines 0 and 1.
        assert_eq!(c.access_element(60, 8), AccessResult::Miss);
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.access_element(60, 8), AccessResult::Hit);
    }

    #[test]
    fn reset_clears() {
        let mut c = Cache::new(1024, 64, 2);
        c.access(0);
        c.reset();
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.access(0), AccessResult::Miss);
    }

    #[test]
    fn from_level_geometry() {
        let l1 = crate::arch::MachineDescription::blue_waters_xe6().caches[0];
        let c = Cache::from_level(&l1);
        assert_eq!(c.n_sets(), 64);
        assert_eq!(c.ways(), 4);
    }

    #[test]
    #[should_panic(expected = "smaller than one full set")]
    fn degenerate_geometry_panics() {
        Cache::new(64, 64, 2);
    }
}
