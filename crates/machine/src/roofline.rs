//! Roofline helper: attainable performance as a function of arithmetic
//! intensity. Used by examples and the docs to show where the stencil and
//! FMM kernels sit on the simulated machine.

use crate::arch::MachineDescription;

/// The roofline of a machine, per core.
#[derive(Debug, Clone, Copy)]
pub struct Roofline {
    /// Peak compute, flop/s.
    pub peak_flops: f64,
    /// Peak memory bandwidth, bytes/s.
    pub peak_bandwidth: f64,
}

impl Roofline {
    /// Single-core roofline of a machine.
    pub fn per_core(machine: &MachineDescription) -> Self {
        Self {
            peak_flops: machine.flops_per_cycle * machine.clock_ghz * 1e9,
            peak_bandwidth: machine.mem_bandwidth_gbs * 1e9,
        }
    }

    /// Whole-node roofline (all cores, all sockets; FPU sharing applied).
    pub fn per_node(machine: &MachineDescription) -> Self {
        let effective_fpus = machine.total_cores() as f64 * machine.fpu_sharing;
        Self {
            peak_flops: machine.flops_per_cycle * machine.clock_ghz * 1e9 * effective_fpus,
            peak_bandwidth: machine.mem_bandwidth_gbs * 1e9 * machine.sockets as f64,
        }
    }

    /// Attainable flop/s at arithmetic intensity `ai` (flops/byte).
    pub fn attainable(&self, ai: f64) -> f64 {
        (self.peak_bandwidth * ai).min(self.peak_flops)
    }

    /// The ridge point: intensity at which the kernel stops being
    /// memory-bound, flops/byte.
    pub fn ridge(&self) -> f64 {
        self.peak_flops / self.peak_bandwidth
    }

    /// `true` when a kernel of intensity `ai` is memory-bound.
    pub fn memory_bound(&self, ai: f64) -> bool {
        ai < self.ridge()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil_is_memory_bound_on_blue_waters() {
        let m = MachineDescription::blue_waters_xe6();
        let r = Roofline::per_core(&m);
        // 7-point stencil: ~8 flops per 24 bytes streamed (read + write +
        // write-allocate fill) ≈ 0.33 flop/B.
        assert!(r.memory_bound(0.33));
    }

    #[test]
    fn attainable_clamps_at_peak() {
        let m = MachineDescription::blue_waters_xe6();
        let r = Roofline::per_core(&m);
        assert_eq!(r.attainable(1e9), r.peak_flops);
        assert!(r.attainable(0.1) < r.peak_flops);
        assert!((r.attainable(0.1) - 0.1 * r.peak_bandwidth).abs() < 1.0);
    }

    #[test]
    fn ridge_consistent() {
        let m = MachineDescription::blue_waters_xe6();
        let r = Roofline::per_core(&m);
        let ridge = r.ridge();
        assert!((r.attainable(ridge) - r.peak_flops).abs() / r.peak_flops < 1e-12);
        assert!(!r.memory_bound(ridge * 1.01));
    }

    #[test]
    fn node_roofline_scales() {
        let m = MachineDescription::blue_waters_xe6();
        let core = Roofline::per_core(&m);
        let node = Roofline::per_node(&m);
        assert!(node.peak_flops > core.peak_flops * 4.0);
        assert!((node.peak_bandwidth - core.peak_bandwidth * 2.0).abs() < 1.0);
    }
}
