//! Multi-level cache hierarchy simulation: an access walks L1 → Ln → memory,
//! filling every level on the way back (inclusive hierarchy).

use crate::arch::MachineDescription;
use crate::cache::{AccessResult, Cache};

/// Where an access was serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicedBy {
    /// Hit in cache level `i` (0-based: 0 = L1).
    Level(usize),
    /// Missed every level; serviced by main memory.
    Memory,
}

/// A stack of [`Cache`]s mirroring a machine's hierarchy.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    levels: Vec<Cache>,
    /// Per-level hit counters (index = level).
    level_hits: Vec<u64>,
    memory_accesses: u64,
    total: u64,
}

impl CacheHierarchy {
    /// Build the hierarchy described by `machine`.
    pub fn new(machine: &MachineDescription) -> Self {
        let levels: Vec<Cache> = machine.caches.iter().map(Cache::from_level).collect();
        let n = levels.len();
        Self {
            levels,
            level_hits: vec![0; n],
            memory_accesses: 0,
            total: 0,
        }
    }

    /// Access a byte address; returns which level serviced it.
    pub fn access(&mut self, addr: u64) -> ServicedBy {
        self.total += 1;
        let mut serviced = ServicedBy::Memory;
        let mut fill_from = self.levels.len();
        for (i, cache) in self.levels.iter_mut().enumerate() {
            match cache.access(addr) {
                AccessResult::Hit => {
                    serviced = ServicedBy::Level(i);
                    fill_from = i;
                    break;
                }
                AccessResult::Miss => {
                    // keep walking down; the `access` call already filled
                    // this level (write-allocate on miss).
                }
            }
        }
        if fill_from == self.levels.len() {
            self.memory_accesses += 1;
        } else {
            self.level_hits[fill_from] += 1;
        }
        serviced
    }

    /// Hits recorded at cache level `i`.
    pub fn hits_at(&self, level: usize) -> u64 {
        self.level_hits[level]
    }

    /// Accesses that reached main memory.
    pub fn memory_accesses(&self) -> u64 {
        self.memory_accesses
    }

    /// Total accesses issued.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Misses observed at level `i` (accesses that had to look deeper).
    pub fn misses_at(&self, level: usize) -> u64 {
        self.levels[level].misses()
    }

    /// Reset all levels and counters.
    pub fn reset(&mut self) {
        for l in &mut self.levels {
            l.reset();
        }
        for h in &mut self.level_hits {
            *h = 0;
        }
        self.memory_accesses = 0;
        self.total = 0;
    }

    /// Number of cache levels.
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::MachineDescription;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(&MachineDescription::blue_waters_xe6())
    }

    #[test]
    fn first_touch_goes_to_memory() {
        let mut h = hierarchy();
        assert_eq!(h.access(0), ServicedBy::Memory);
        assert_eq!(h.memory_accesses(), 1);
    }

    #[test]
    fn second_touch_hits_l1() {
        let mut h = hierarchy();
        h.access(0);
        assert_eq!(h.access(0), ServicedBy::Level(0));
        assert_eq!(h.hits_at(0), 1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = hierarchy();
        // Touch a working set of 64 KiB (4x L1 capacity, well within L2).
        let lines = (64 * 1024) / 64;
        for l in 0..lines {
            h.access(l * 64);
        }
        // Re-walk: L1 (16 KiB) cannot hold it, L2 can → mostly L2 hits.
        let mut l2_hits = 0;
        for l in 0..lines {
            if h.access(l * 64) == ServicedBy::Level(1) {
                l2_hits += 1;
            }
        }
        assert!(
            l2_hits > lines * 8 / 10,
            "expected most L2 hits, got {l2_hits}/{lines}"
        );
    }

    #[test]
    fn conservation_of_accesses() {
        let mut h = hierarchy();
        for i in 0..10_000u64 {
            h.access((i * 136) % (1 << 22));
        }
        let serviced: u64 =
            (0..h.n_levels()).map(|l| h.hits_at(l)).sum::<u64>() + h.memory_accesses();
        assert_eq!(serviced, h.total_accesses());
    }

    #[test]
    fn reset_restores_cold_state() {
        let mut h = hierarchy();
        h.access(0);
        h.reset();
        assert_eq!(h.total_accesses(), 0);
        assert_eq!(h.access(0), ServicedBy::Memory);
    }
}
