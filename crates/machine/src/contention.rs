//! Thread-scaling model: how single-core execution time maps to `t` threads
//! on a real node.
//!
//! The paper's analytical models are single-core; the *actual* machine adds
//! effects the hybrid model must learn: bandwidth saturation of the shared
//! memory system, Amdahl-style serial fractions, per-thread synchronization
//! overhead, and the Interlagos quirk that two integer cores share one FPU
//! module (so flop-bound code stops scaling at half the thread count).

use crate::arch::MachineDescription;
use serde::{Deserialize, Serialize};

/// Parameters of the thread-contention model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreadModel {
    /// Fraction of single-thread work that cannot be parallelized.
    pub serial_fraction: f64,
    /// Per-thread synchronization/fork-join overhead, seconds.
    pub sync_overhead_s: f64,
    /// Number of threads at which memory bandwidth saturates (memory-bound
    /// codes gain nothing beyond this point; typically 4–6 on Interlagos).
    pub bandwidth_saturation_threads: f64,
}

impl Default for ThreadModel {
    fn default() -> Self {
        Self {
            serial_fraction: 0.02,
            sync_overhead_s: 4e-6,
            bandwidth_saturation_threads: 5.0,
        }
    }
}

impl ThreadModel {
    /// Effective parallel speedup for *compute-bound* work on `t` threads.
    ///
    /// Amdahl with FPU-module sharing: beyond `cores * fpu_sharing`
    /// effective FPUs, extra threads add little for flop-bound kernels.
    pub fn compute_speedup(&self, t: usize, machine: &MachineDescription) -> f64 {
        assert!(t >= 1, "need at least one thread");
        let t = t as f64;
        let fpus = machine.total_cores() as f64 * machine.fpu_sharing;
        // Effective compute lanes: linear until FPUs are exhausted, then a
        // mild 20% gain per extra thread pair (integer/AGU work still scales).
        let lanes = if t <= fpus {
            t
        } else {
            fpus + 0.2 * (t - fpus)
        };
        1.0 / (self.serial_fraction + (1.0 - self.serial_fraction) / lanes)
    }

    /// Effective parallel speedup for *memory-bound* work on `t` threads:
    /// linear until the shared memory system saturates, flat afterwards,
    /// with a small cliff past one socket (NUMA traffic).
    pub fn memory_speedup(&self, t: usize, machine: &MachineDescription) -> f64 {
        assert!(t >= 1, "need at least one thread");
        let t_f = t as f64;
        let sat = self.bandwidth_saturation_threads;
        let raw = if t_f <= sat {
            t_f
        } else {
            // soft saturation: asymptote at ~1.25 * sat
            sat + (1.0 - (-((t_f - sat) / sat)).exp()) * 0.25 * sat
        };
        // Second socket brings its own memory controllers: allow another
        // linear region when threads spill past one socket.
        let per_socket = machine.cores_per_socket as f64;
        let sockets_used = (t_f / per_socket).ceil().min(machine.sockets as f64);
        let speedup = raw * sockets_used.max(1.0).sqrt();
        1.0 / (self.serial_fraction + (1.0 - self.serial_fraction) / speedup)
    }

    /// Map a single-thread time to `t` threads for a workload whose
    /// memory-bound share is `mem_share ∈ [0,1]`.
    pub fn scale_time(
        &self,
        t1_seconds: f64,
        t: usize,
        mem_share: f64,
        machine: &MachineDescription,
    ) -> f64 {
        assert!((0.0..=1.0).contains(&mem_share), "mem_share outside [0,1]");
        let mem = t1_seconds * mem_share / self.memory_speedup(t, machine);
        let cpu = t1_seconds * (1.0 - mem_share) / self.compute_speedup(t, machine);
        mem + cpu + self.sync_overhead_s * (t.saturating_sub(1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bw() -> MachineDescription {
        MachineDescription::blue_waters_xe6()
    }

    #[test]
    fn one_thread_is_identity() {
        let m = ThreadModel::default();
        let t1 = 1.0;
        let t = m.scale_time(t1, 1, 0.5, &bw());
        assert!(
            (t - t1 / m.memory_speedup(1, &bw()) * 0.5 - t1 / m.compute_speedup(1, &bw()) * 0.5)
                .abs()
                < 1e-9
        );
        // speedup(1) ≈ 1 → time ≈ t1
        assert!((t - 1.0).abs() < 0.05, "t = {t}");
    }

    #[test]
    fn speedups_monotone_nondecreasing() {
        let m = ThreadModel::default();
        let mach = bw();
        let mut prev_c = 0.0;
        let mut prev_m = 0.0;
        for t in 1..=16 {
            let c = m.compute_speedup(t, &mach);
            let mm = m.memory_speedup(t, &mach);
            assert!(c >= prev_c - 1e-9, "compute at t={t}");
            assert!(mm >= prev_m - 1e-9, "memory at t={t}");
            prev_c = c;
            prev_m = mm;
        }
    }

    #[test]
    fn memory_bound_saturates_earlier_than_compute() {
        let m = ThreadModel::default();
        let mach = bw();
        // Gain from 6 → 8 threads should be much smaller for memory-bound.
        let mem_gain = m.memory_speedup(8, &mach) / m.memory_speedup(6, &mach);
        let cpu_gain = m.compute_speedup(8, &mach) / m.compute_speedup(6, &mach);
        assert!(mem_gain < cpu_gain, "mem {mem_gain} vs cpu {cpu_gain}");
    }

    #[test]
    fn fpu_sharing_limits_compute_scaling() {
        let m = ThreadModel {
            serial_fraction: 0.0,
            ..ThreadModel::default()
        };
        let mach = bw(); // 16 cores, fpu_sharing 0.5 → 8 effective FPUs
        let s8 = m.compute_speedup(8, &mach);
        let s16 = m.compute_speedup(16, &mach);
        assert!(s8 > 7.5);
        assert!(s16 < 12.0, "16-thread speedup {s16} should be FPU-limited");
    }

    #[test]
    fn sync_overhead_grows_with_threads() {
        let m = ThreadModel::default();
        let mach = bw();
        // Tiny kernel: overhead dominates, more threads = slower.
        let t2 = m.scale_time(1e-6, 2, 1.0, &mach);
        let t16 = m.scale_time(1e-6, 16, 1.0, &mach);
        assert!(t16 > t2, "t16 {t16} t2 {t2}");
    }

    #[test]
    fn scale_time_helps_large_kernels() {
        let m = ThreadModel::default();
        let mach = bw();
        let t1 = 1.0;
        let t4 = m.scale_time(t1, 4, 1.0, &mach);
        assert!(t4 < t1 / 2.5, "4 threads gave {t4}");
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        ThreadModel::default().compute_speedup(0, &bw());
    }

    #[test]
    #[should_panic(expected = "mem_share")]
    fn bad_mem_share_panics() {
        ThreadModel::default().scale_time(1.0, 2, 1.5, &bw());
    }
}
