//! Deterministic measurement-noise model.
//!
//! Real measured execution times jitter (OS interference, DVFS, cache state
//! from previous runs). The oracle multiplies its deterministic time by a
//! lognormal factor seeded by a hash of the configuration, so datasets are
//! perfectly reproducible while still exhibiting realistic scatter — which
//! is what keeps the ML problem honest (no model can reach 0% MAPE).

use serde::{Deserialize, Serialize};

/// Multiplicative lognormal noise: factor = exp(sigma * z), z ~ N(0, 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Log-space standard deviation (0.03 ≈ ±3% typical jitter).
    pub sigma: f64,
    /// Base seed mixed with the per-configuration hash.
    pub seed: u64,
}

impl NoiseModel {
    /// Create a noise model.
    pub fn new(sigma: f64, seed: u64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        Self { sigma, seed }
    }

    /// Noise disabled.
    pub fn none() -> Self {
        Self {
            sigma: 0.0,
            seed: 0,
        }
    }

    /// Deterministic noise factor for a configuration hash. Repeated calls
    /// with the same `(seed, config_hash)` return the same factor.
    pub fn factor(&self, config_hash: u64) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        let z = standard_normal(mix(self.seed, config_hash));
        (self.sigma * z).exp()
    }

    /// Apply noise to a time value.
    pub fn apply(&self, seconds: f64, config_hash: u64) -> f64 {
        seconds * self.factor(config_hash)
    }
}

/// Stateless 64-bit mix of two values (splitmix-style finalizer).
#[inline]
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(31) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a slice of u64 configuration fields.
pub fn hash_config(fields: &[u64]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &f in fields {
        h = mix(h, f);
    }
    h
}

/// Deterministic standard-normal sample from a 64-bit state (Box–Muller on
/// two derived uniforms).
fn standard_normal(state: u64) -> f64 {
    let u1_bits = mix(state, 0xA5A5_A5A5_A5A5_A5A5);
    let u2_bits = mix(state, 0x5A5A_5A5A_5A5A_5A5A);
    let u1 = ((u1_bits >> 11) as f64 + 0.5) * (1.0 / (1u64 << 53) as f64);
    let u2 = (u2_bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_factors() {
        let n = NoiseModel::new(0.05, 42);
        assert_eq!(n.factor(123), n.factor(123));
        assert_ne!(n.factor(123), n.factor(124));
    }

    #[test]
    fn zero_sigma_is_identity() {
        let n = NoiseModel::none();
        assert_eq!(n.factor(99), 1.0);
        assert_eq!(n.apply(3.5, 99), 3.5);
    }

    #[test]
    fn factors_centered_near_one() {
        let n = NoiseModel::new(0.03, 7);
        let k = 20_000u64;
        let mean: f64 = (0..k).map(|i| n.factor(i)).sum::<f64>() / k as f64;
        // lognormal mean = exp(sigma^2/2) ≈ 1.00045
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        let spread: f64 = (0..k).map(|i| (n.factor(i).ln()).powi(2)).sum::<f64>() / k as f64;
        assert!(
            (spread.sqrt() - 0.03).abs() < 0.005,
            "sigma {}",
            spread.sqrt()
        );
    }

    #[test]
    fn factors_always_positive() {
        let n = NoiseModel::new(0.5, 1);
        for i in 0..10_000u64 {
            assert!(n.factor(i) > 0.0);
        }
    }

    #[test]
    fn hash_config_order_sensitive() {
        assert_ne!(hash_config(&[1, 2]), hash_config(&[2, 1]));
        assert_eq!(hash_config(&[1, 2]), hash_config(&[1, 2]));
        assert_ne!(hash_config(&[]), hash_config(&[0]));
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn negative_sigma_panics() {
        NoiseModel::new(-0.1, 0);
    }

    #[test]
    fn different_seeds_different_noise() {
        let a = NoiseModel::new(0.1, 1);
        let b = NoiseModel::new(0.1, 2);
        let same = (0..100).filter(|&i| a.factor(i) == b.factor(i)).count();
        assert!(same < 5);
    }
}
