//! # lam-machine
//!
//! Machine-model substrate standing in for the paper's Blue Waters Cray XE6
//! testbed: a machine description (clock, cores, cache hierarchy, memory
//! system) with an AMD Interlagos 6276 preset, a set-associative LRU cache
//! simulator, a multi-level execution-cost engine built on the paper's
//! `T = max(Tflops, Tmem)` law, a thread-contention model, and a
//! deterministic measurement-noise model.
//!
//! The application crates (`lam-stencil`, `lam-fmm`) use this crate to
//! compute *ground-truth* execution times that include the non-idealities
//! (conflict misses, prefetching, bandwidth saturation, jitter) that the
//! paper's simplified analytical models in `lam-analytical` deliberately
//! ignore — reproducing the analytical-vs-actual gap the hybrid model
//! learns to correct.

pub mod arch;
pub mod cache;
pub mod contention;
pub mod cost;
pub mod hierarchy;
pub mod noise;
pub mod roofline;

pub use arch::{CacheLevel, MachineDescription};
pub use cache::{AccessResult, Cache};
pub use contention::ThreadModel;
pub use cost::{CostBreakdown, CostModel};
pub use hierarchy::CacheHierarchy;
pub use noise::NoiseModel;
