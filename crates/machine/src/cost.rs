//! Execution-cost engine implementing the paper's single-node law
//! `T = max(Tflops, Tmem)` (eq. 2), generalized to a per-cache-level
//! traffic breakdown (eq. 5), with partial overlap support.

use crate::arch::MachineDescription;
use serde::{Deserialize, Serialize};

/// Traffic and work tallies for one kernel execution on one core.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Floating-point operations executed.
    pub flops: f64,
    /// Elements transferred from each cache level (index 0 = L1), i.e. hits
    /// serviced at that level.
    pub level_elements: Vec<f64>,
    /// Elements transferred from main memory.
    pub memory_elements: f64,
    /// Fixed overhead in seconds (loop control, sync, calls).
    pub overhead_seconds: f64,
}

impl CostBreakdown {
    /// Total data elements moved (all levels + memory).
    pub fn total_elements(&self) -> f64 {
        self.level_elements.iter().sum::<f64>() + self.memory_elements
    }
}

/// Cost model over a machine description.
#[derive(Debug, Clone)]
pub struct CostModel {
    machine: MachineDescription,
    /// Fraction of memory time hidden under compute, in `[0, 1]`.
    /// `1.0` = perfect overlap → `max` law (paper's assumption);
    /// `0.0` = fully serialized → sum.
    pub overlap: f64,
}

impl CostModel {
    /// Perfect-overlap model (the paper's eq. 2).
    pub fn new(machine: MachineDescription) -> Self {
        Self {
            machine,
            overlap: 1.0,
        }
    }

    /// Set a partial overlap factor.
    pub fn with_overlap(mut self, overlap: f64) -> Self {
        assert!((0.0..=1.0).contains(&overlap), "overlap outside [0,1]");
        self.overlap = overlap;
        self
    }

    /// The underlying machine.
    pub fn machine(&self) -> &MachineDescription {
        &self.machine
    }

    /// Compute time for floating-point work alone (seconds).
    pub fn t_flops(&self, flops: f64) -> f64 {
        flops * self.machine.time_per_flop()
    }

    /// Data-movement time for a breakdown (seconds): per-level elements at
    /// each level's inverse bandwidth plus memory elements at `β_mem`
    /// (the paper's eq. 5 with `T_Li = data · β_Li`).
    pub fn t_mem(&self, b: &CostBreakdown) -> f64 {
        let mut t = b.memory_elements * self.machine.beta_mem();
        for (i, &elems) in b.level_elements.iter().enumerate() {
            if i < self.machine.caches.len() {
                t += elems * self.machine.beta_cache(i);
            } else {
                t += elems * self.machine.beta_mem();
            }
        }
        t
    }

    /// Total execution time under the overlap law:
    /// `max(Tf, Tm) + (1 - overlap) * min(Tf, Tm) + overhead`.
    pub fn execution_time(&self, b: &CostBreakdown) -> f64 {
        let tf = self.t_flops(b.flops);
        let tm = self.t_mem(b);
        tf.max(tm) + (1.0 - self.overlap) * tf.min(tm) + b.overhead_seconds
    }

    /// Arithmetic intensity of a breakdown, flops per byte.
    pub fn arithmetic_intensity(&self, b: &CostBreakdown) -> f64 {
        let bytes = b.total_elements() * self.machine.element_bytes as f64;
        if bytes == 0.0 {
            f64::INFINITY
        } else {
            b.flops / bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(MachineDescription::blue_waters_xe6())
    }

    #[test]
    fn flop_bound_kernel() {
        let m = model();
        let b = CostBreakdown {
            flops: 1e9,
            level_elements: vec![0.0, 0.0, 0.0],
            memory_elements: 1.0,
            overhead_seconds: 0.0,
        };
        let t = m.execution_time(&b);
        // 1e9 flops at ~9.2 Gflop/s per core → ~0.109 s.
        assert!((t - m.t_flops(1e9)).abs() / t < 1e-6);
    }

    #[test]
    fn memory_bound_kernel() {
        let m = model();
        let b = CostBreakdown {
            flops: 1.0,
            level_elements: vec![0.0, 0.0, 0.0],
            memory_elements: 1e9,
            overhead_seconds: 0.0,
        };
        let t = m.execution_time(&b);
        assert!((t - m.t_mem(&b)).abs() / t < 1e-6);
        // 8 GB at 25.6 GB/s → 0.3125 s.
        assert!((t - 0.3125).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn max_law_with_perfect_overlap() {
        let m = model();
        let b = CostBreakdown {
            flops: 1e8,
            level_elements: vec![0.0; 3],
            memory_elements: 1e8,
            overhead_seconds: 0.0,
        };
        let t = m.execution_time(&b);
        assert!((t - m.t_flops(1e8).max(m.t_mem(&b))).abs() < 1e-15);
    }

    #[test]
    fn zero_overlap_sums() {
        let m = model().with_overlap(0.0);
        let b = CostBreakdown {
            flops: 1e8,
            level_elements: vec![0.0; 3],
            memory_elements: 1e8,
            overhead_seconds: 0.0,
        };
        let t = m.execution_time(&b);
        let expect = m.t_flops(1e8) + m.t_mem(&b);
        assert!((t - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn cache_level_traffic_cheaper_than_memory() {
        let m = model();
        let from_l1 = CostBreakdown {
            flops: 0.0,
            level_elements: vec![1e8, 0.0, 0.0],
            memory_elements: 0.0,
            overhead_seconds: 0.0,
        };
        let from_mem = CostBreakdown {
            flops: 0.0,
            level_elements: vec![0.0, 0.0, 0.0],
            memory_elements: 1e8,
            overhead_seconds: 0.0,
        };
        assert!(m.t_mem(&from_l1) < m.t_mem(&from_mem) / 2.0);
    }

    #[test]
    fn overhead_added() {
        let m = model();
        let b = CostBreakdown {
            overhead_seconds: 0.5,
            ..Default::default()
        };
        assert!((m.execution_time(&b) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn arithmetic_intensity_computed() {
        let m = model();
        let b = CostBreakdown {
            flops: 800.0,
            level_elements: vec![0.0; 3],
            memory_elements: 100.0, // 800 bytes
            overhead_seconds: 0.0,
        };
        assert!((m.arithmetic_intensity(&b) - 1.0).abs() < 1e-12);
        let pure = CostBreakdown {
            flops: 5.0,
            ..Default::default()
        };
        assert!(m.arithmetic_intensity(&pure).is_infinite());
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn bad_overlap_panics() {
        model().with_overlap(1.5);
    }
}
