//! Machine descriptions: clock, core topology, cache hierarchy, and memory
//! system, with the Blue Waters XE6 node preset used throughout the paper.

use serde::{Deserialize, Serialize};

/// One level of the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheLevel {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Cache-line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways). `0` denotes fully associative.
    pub associativity: u32,
    /// Load-to-use latency in core cycles.
    pub latency_cycles: f64,
    /// Sustained bandwidth from this level to the core, bytes/cycle.
    pub bandwidth_bytes_per_cycle: f64,
    /// `true` when the level is shared by all cores of a socket (e.g. L3).
    pub shared: bool,
}

impl CacheLevel {
    /// Number of cache lines.
    pub fn n_lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }

    /// Number of sets for the configured associativity.
    pub fn n_sets(&self) -> u64 {
        let ways = if self.associativity == 0 {
            self.n_lines() as u32
        } else {
            self.associativity
        };
        (self.n_lines() / ways as u64).max(1)
    }

    /// Elements of `element_bytes` each that fit in the cache.
    pub fn capacity_elements(&self, element_bytes: u64) -> u64 {
        self.size_bytes / element_bytes
    }

    /// Elements per cache line (the paper's `W`).
    pub fn elements_per_line(&self, element_bytes: u64) -> u64 {
        (self.line_bytes / element_bytes).max(1)
    }
}

/// A single-node machine description.
///
/// All times derived from it are in **seconds**; bandwidths in bytes/second.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineDescription {
    /// Human-readable name.
    pub name: String,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Physical cores per socket (Bulldozer counts one core per
    /// integer-cluster; two clusters share one FPU module).
    pub cores_per_socket: usize,
    /// Sockets per node.
    pub sockets: usize,
    /// Peak double-precision flops per core per cycle.
    pub flops_per_cycle: f64,
    /// Cache hierarchy ordered L1 → Ln (last level closest to memory).
    pub caches: Vec<CacheLevel>,
    /// Sustained main-memory bandwidth per socket, GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Main-memory access latency in nanoseconds.
    pub mem_latency_ns: f64,
    /// Size of one data element in bytes (f64 → 8).
    pub element_bytes: u64,
    /// Fraction of two "cores" sharing an FPU module (Interlagos: each pair
    /// of integer cores shares one floating-point unit). `1.0` means fully
    /// independent FPUs.
    pub fpu_sharing: f64,
}

impl MachineDescription {
    /// The Blue Waters XE6 compute node of the paper: dual-socket AMD
    /// Interlagos model 6276, 2.3 GHz, 16 KB L1D / 2 MB L2 / 8 MB shared L3
    /// per socket.
    pub fn blue_waters_xe6() -> Self {
        Self {
            name: "Blue Waters XE6 (2x AMD Interlagos 6276)".to_string(),
            clock_ghz: 2.3,
            cores_per_socket: 8,
            sockets: 2,
            // One 4-wide FMA-capable FPU shared per module; 4 flops/cycle is
            // a realistic sustained figure per Bulldozer core pair.
            flops_per_cycle: 4.0,
            caches: vec![
                CacheLevel {
                    size_bytes: 16 * 1024,
                    line_bytes: 64,
                    associativity: 4,
                    latency_cycles: 4.0,
                    bandwidth_bytes_per_cycle: 64.0,
                    shared: false,
                },
                CacheLevel {
                    size_bytes: 2 * 1024 * 1024,
                    line_bytes: 64,
                    associativity: 16,
                    latency_cycles: 21.0,
                    bandwidth_bytes_per_cycle: 16.0,
                    shared: false,
                },
                CacheLevel {
                    size_bytes: 8 * 1024 * 1024,
                    line_bytes: 64,
                    associativity: 64,
                    latency_cycles: 87.0,
                    bandwidth_bytes_per_cycle: 12.0,
                    shared: true,
                },
            ],
            mem_bandwidth_gbs: 25.6, // half of the node's ~51.2 GB/s per socket
            mem_latency_ns: 95.0,
            element_bytes: 8,
            fpu_sharing: 0.5,
        }
    }

    /// A generic small laptop-class machine (used by tests and the
    /// hardware-change example: a target the models were *not* built for).
    pub fn laptop_x86() -> Self {
        Self {
            name: "Generic laptop x86-64".to_string(),
            clock_ghz: 3.2,
            cores_per_socket: 4,
            sockets: 1,
            flops_per_cycle: 16.0,
            caches: vec![
                CacheLevel {
                    size_bytes: 32 * 1024,
                    line_bytes: 64,
                    associativity: 8,
                    latency_cycles: 4.0,
                    bandwidth_bytes_per_cycle: 64.0,
                    shared: false,
                },
                CacheLevel {
                    size_bytes: 512 * 1024,
                    line_bytes: 64,
                    associativity: 8,
                    latency_cycles: 14.0,
                    bandwidth_bytes_per_cycle: 32.0,
                    shared: false,
                },
                CacheLevel {
                    size_bytes: 8 * 1024 * 1024,
                    line_bytes: 64,
                    associativity: 16,
                    latency_cycles: 50.0,
                    bandwidth_bytes_per_cycle: 16.0,
                    shared: true,
                },
            ],
            mem_bandwidth_gbs: 40.0,
            mem_latency_ns: 80.0,
            element_bytes: 8,
            fpu_sharing: 1.0,
        }
    }

    /// Clock period in seconds.
    #[inline]
    pub fn cycle_seconds(&self) -> f64 {
        1e-9 / self.clock_ghz
    }

    /// Time per double-precision flop on one core, seconds (the paper's
    /// `t_c`).
    #[inline]
    pub fn time_per_flop(&self) -> f64 {
        self.cycle_seconds() / self.flops_per_cycle
    }

    /// Inverse memory bandwidth in seconds per *element* (the paper's
    /// `β_mem`), for a single core's share of one socket.
    #[inline]
    pub fn beta_mem(&self) -> f64 {
        self.element_bytes as f64 / (self.mem_bandwidth_gbs * 1e9)
    }

    /// Inverse bandwidth of cache level `i` (0-based) in seconds per element.
    pub fn beta_cache(&self, level: usize) -> f64 {
        let l = &self.caches[level];
        self.element_bytes as f64 / (l.bandwidth_bytes_per_cycle * self.clock_ghz * 1e9)
    }

    /// Elements per cache line (`W` in the paper), from the L1 line size.
    pub fn elements_per_line(&self) -> u64 {
        self.caches
            .first()
            .map(|l| l.elements_per_line(self.element_bytes))
            .unwrap_or(1)
    }

    /// Total cores in the node.
    pub fn total_cores(&self) -> usize {
        self.cores_per_socket * self.sockets
    }

    /// Basic structural validation.
    pub fn validate(&self) -> Result<(), String> {
        if self.clock_ghz <= 0.0 {
            return Err("clock must be positive".to_string());
        }
        if self.caches.is_empty() {
            return Err("at least one cache level required".to_string());
        }
        let mut prev = 0u64;
        for (i, c) in self.caches.iter().enumerate() {
            if c.size_bytes <= prev {
                return Err(format!("cache level {i} not larger than level {}", i - 1));
            }
            if c.line_bytes == 0 || c.size_bytes % c.line_bytes != 0 {
                return Err(format!("cache level {i} line size invalid"));
            }
            prev = c.size_bytes;
        }
        if self.element_bytes == 0 {
            return Err("element size must be positive".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blue_waters_preset_valid() {
        let m = MachineDescription::blue_waters_xe6();
        m.validate().unwrap();
        assert_eq!(m.total_cores(), 16);
        assert_eq!(m.elements_per_line(), 8);
        assert_eq!(m.caches.len(), 3);
    }

    #[test]
    fn laptop_preset_valid() {
        MachineDescription::laptop_x86().validate().unwrap();
    }

    #[test]
    fn derived_times_sane() {
        let m = MachineDescription::blue_waters_xe6();
        // 2.3 GHz, 4 flops/cycle → ~0.109 ns per flop.
        let tc = m.time_per_flop();
        assert!((tc - 1.0869e-10).abs() / tc < 1e-3, "tc = {tc}");
        // 25.6 GB/s → 8 bytes / 25.6e9 = 0.3125 ns per element.
        let beta = m.beta_mem();
        assert!((beta - 3.125e-10).abs() / beta < 1e-6, "beta = {beta}");
        // L1 faster than L2 faster than L3 faster than memory.
        assert!(m.beta_cache(0) < m.beta_cache(1));
        assert!(m.beta_cache(1) < m.beta_cache(2));
        assert!(m.beta_cache(2) < m.beta_mem());
    }

    #[test]
    fn cache_level_geometry() {
        let l1 = MachineDescription::blue_waters_xe6().caches[0];
        assert_eq!(l1.n_lines(), 256);
        assert_eq!(l1.n_sets(), 64);
        assert_eq!(l1.elements_per_line(8), 8);
        assert_eq!(l1.capacity_elements(8), 2048);
    }

    #[test]
    fn fully_associative_sets() {
        let c = CacheLevel {
            size_bytes: 4096,
            line_bytes: 64,
            associativity: 0,
            latency_cycles: 1.0,
            bandwidth_bytes_per_cycle: 1.0,
            shared: false,
        };
        assert_eq!(c.n_sets(), 1);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut m = MachineDescription::blue_waters_xe6();
        m.clock_ghz = 0.0;
        assert!(m.validate().is_err());
        let mut m = MachineDescription::blue_waters_xe6();
        m.caches[1].size_bytes = m.caches[0].size_bytes;
        assert!(m.validate().is_err());
        let mut m = MachineDescription::blue_waters_xe6();
        m.caches.clear();
        assert!(m.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let m = MachineDescription::blue_waters_xe6();
        let s = serde_json::to_string(&m).unwrap();
        let back: MachineDescription = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);
    }
}
