//! Property-based tests for the cache simulator and cost engine.

use lam_machine::arch::MachineDescription;
use lam_machine::cache::{AccessResult, Cache};
use lam_machine::contention::ThreadModel;
use lam_machine::cost::{CostBreakdown, CostModel};
use lam_machine::hierarchy::CacheHierarchy;
use lam_machine::noise::NoiseModel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hits + misses always equals accesses, for any trace.
    #[test]
    fn cache_conservation(addrs in proptest::collection::vec(0u64..1_000_000, 1..500)) {
        let mut c = Cache::new(4096, 64, 4);
        for &a in &addrs {
            c.access(a);
        }
        prop_assert_eq!(c.hits() + c.misses(), addrs.len() as u64);
        prop_assert!(c.resident_lines() <= 64);
    }

    /// Repeating any trace that fits in cache yields all hits the second
    /// time.
    #[test]
    fn cache_warm_replay_hits(lines in proptest::collection::vec(0u64..16, 1..16)) {
        // 16 distinct lines, fully associative cache of 64 lines.
        let mut c = Cache::new(4096, 64, 64);
        for &l in &lines {
            c.access(l * 64);
        }
        for &l in &lines {
            prop_assert_eq!(c.access(l * 64), AccessResult::Hit);
        }
    }

    /// An immediately repeated access is always a hit.
    #[test]
    fn immediate_rereference_hits(addr in 0u64..10_000_000) {
        let mut c = Cache::new(1024, 64, 2);
        c.access(addr);
        prop_assert_eq!(c.access(addr), AccessResult::Hit);
    }

    /// The hierarchy services every access at exactly one place.
    #[test]
    fn hierarchy_conservation(addrs in proptest::collection::vec(0u64..4_000_000, 1..300)) {
        let m = MachineDescription::blue_waters_xe6();
        let mut h = CacheHierarchy::new(&m);
        for &a in &addrs {
            h.access(a);
        }
        let serviced: u64 = (0..h.n_levels()).map(|l| h.hits_at(l)).sum::<u64>() + h.memory_accesses();
        prop_assert_eq!(serviced, addrs.len() as u64);
    }

    /// Execution time is monotone in both flops and memory elements.
    #[test]
    fn cost_monotone(f1 in 0.0f64..1e9, f2 in 0.0f64..1e9, m1 in 0.0f64..1e9, m2 in 0.0f64..1e9) {
        let model = CostModel::new(MachineDescription::blue_waters_xe6());
        let mk = |flops: f64, mem: f64| CostBreakdown {
            flops,
            level_elements: vec![0.0; 3],
            memory_elements: mem,
            overhead_seconds: 0.0,
        };
        let (flo, fhi) = (f1.min(f2), f1.max(f2));
        let (mlo, mhi) = (m1.min(m2), m1.max(m2));
        prop_assert!(model.execution_time(&mk(fhi, mlo)) >= model.execution_time(&mk(flo, mlo)) - 1e-18);
        prop_assert!(model.execution_time(&mk(flo, mhi)) >= model.execution_time(&mk(flo, mlo)) - 1e-18);
    }

    /// Overlap interpolates between max (1.0) and sum (0.0).
    #[test]
    fn overlap_bounds(flops in 1.0f64..1e9, mem in 1.0f64..1e9, overlap in 0.0f64..1.0) {
        let machine = MachineDescription::blue_waters_xe6();
        let b = CostBreakdown {
            flops,
            level_elements: vec![0.0; 3],
            memory_elements: mem,
            overhead_seconds: 0.0,
        };
        let t_max = CostModel::new(machine.clone()).execution_time(&b);
        let t_sum = CostModel::new(machine.clone()).with_overlap(0.0).execution_time(&b);
        let t = CostModel::new(machine).with_overlap(overlap).execution_time(&b);
        prop_assert!(t >= t_max - 1e-15);
        prop_assert!(t <= t_sum + 1e-15);
    }

    /// Thread speedups are ≥ ~1 and bounded by the thread count.
    #[test]
    fn speedup_bounds(t in 1usize..=16) {
        let m = ThreadModel::default();
        let machine = MachineDescription::blue_waters_xe6();
        let c = m.compute_speedup(t, &machine);
        let mm = m.memory_speedup(t, &machine);
        prop_assert!(c >= 0.9 && c <= t as f64 + 1e-9, "compute {c}");
        prop_assert!(mm >= 0.9, "memory {mm}");
        prop_assert!(mm <= t as f64 * 1.5 + 1e-9, "memory {mm} vs t {t}");
    }

    /// Noise factors are positive, deterministic, and centered near 1.
    #[test]
    fn noise_properties(sigma in 0.0f64..0.3, seed in 0u64..1000, hash in 0u64..1_000_000) {
        let n = NoiseModel::new(sigma, seed);
        let f = n.factor(hash);
        prop_assert!(f > 0.0);
        prop_assert_eq!(f, n.factor(hash));
        // 5-sigma lognormal bound
        prop_assert!(f.ln().abs() <= sigma * 6.0 + 1e-12);
    }
}
