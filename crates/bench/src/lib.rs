//! # lam-bench
//!
//! Experiment harness regenerating every evaluation figure of *Learning
//! with Analytical Models* (Ibeid et al., 2019). One binary per figure —
//! see DESIGN.md §4 for the index — plus Criterion micro-benchmarks for
//! the prediction-cost story (`benches/`).
//!
//! All binaries print aligned tables to stdout and write a JSON record
//! under `results/` so EXPERIMENTS.md can cite exact numbers.

pub mod report;
pub mod runners;

pub use report::{print_series, FigureReport};
pub use runners::{
    blue_waters_fmm, blue_waters_stencil, fmm_dataset, run_et_vs_hybrid, run_pure_ml_panel,
    stencil_dataset, EtVsHybridSpec, StandardModels,
};
