//! Strategy comparison: regret-vs-budget curves for every `lam-tune`
//! strategy (plus the active learner) on the stencil, small-FMM, and
//! small-SpMV scenarios.
//!
//! For each scenario a hybrid guide model is trained once on 10% of the
//! space; each strategy then tunes under growing oracle budgets, and the
//! regret of its recommendation (best measured time / true best) is
//! recorded against the budget. The active learner runs the same budgets
//! with its in-loop refits. Results print as aligned tables and land in
//! `results/tune_strategies.json`.
//!
//! Run: `cargo run -p lam-bench --release --bin tune_strategies`

use lam_bench::runners::{servable, StandardModels};
use lam_core::predict::PredictRow;
use lam_ml::sampling::train_test_split_fraction;
use lam_tune::{active_learn, all_strategies, ActiveLearnOptions, TuneRequest, ACTIVE_STRATEGY};
use serde::{Deserialize, Serialize};

/// Budgets swept per strategy (oracle evaluations).
const BUDGETS: [usize; 4] = [8, 16, 32, 64];
/// Scenarios compared.
const SCENARIOS: [&str; 3] = ["stencil-grid", "fmm-small", "spmv-small"];
/// Guide-model training fraction.
const TRAIN_FRACTION: f64 = 0.10;
/// Seed for the guide-model split and every strategy run.
const SEED: u64 = 20190520;

/// One (scenario, strategy, budget) observation.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RegretPoint {
    workload: String,
    strategy: String,
    budget: usize,
    evaluations: usize,
    best_oracle_s: f64,
    true_best_s: f64,
    regret: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct TuneStrategiesReport {
    title: String,
    train_fraction: f64,
    seed: u64,
    points: Vec<RegretPoint>,
}

fn main() {
    let mut points = Vec::new();
    for name in SCENARIOS {
        let entry = servable(name).expect("builtin scenario resolves");
        let workload = entry.workload();
        let data = entry.dataset();
        let true_best = data
            .response()
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);

        // One guide model per scenario: the workload's own hybrid on a
        // 10% sample, exactly like the figure experiments.
        let (train, _) = train_test_split_fraction(&data, TRAIN_FRACTION, SEED);
        let mut guide = StandardModels::hybrid_for(workload, workload.hybrid_config(), SEED);
        guide.fit(&train).expect("guide model fits");
        let model: &dyn PredictRow = &guide;

        println!(
            "\n{name}: {} configs, true best {:.4} ms, guide hybrid on {} rows",
            data.len(),
            true_best * 1e3,
            train.len()
        );
        println!(
            "  {:>11} | {}",
            "strategy",
            BUDGETS.map(|b| format!("b={b:<4}")).join("  ")
        );
        println!("  {}", "-".repeat(13 + 8 * BUDGETS.len()));

        for tuner in all_strategies() {
            let mut regrets = Vec::new();
            for budget in BUDGETS {
                let mut report = tuner
                    .tune(
                        workload,
                        model,
                        &TuneRequest {
                            budget,
                            top_k: 5,
                            seed: SEED,
                        },
                    )
                    .expect("strategy runs");
                report.attach_regret(data.response());
                let regret = report.regret.expect("regret attached");
                regrets.push(regret);
                points.push(RegretPoint {
                    workload: name.to_string(),
                    strategy: tuner.name().to_string(),
                    budget,
                    evaluations: report.evaluations,
                    best_oracle_s: report.best.oracle.expect("measured best"),
                    true_best_s: report.true_best.expect("true best"),
                    regret,
                });
            }
            print_row(tuner.name(), &regrets);
        }

        // The active learner under the same budgets.
        let mut regrets = Vec::new();
        for budget in BUDGETS {
            let mut report = active_learn(
                workload,
                &ActiveLearnOptions {
                    budget,
                    seed: SEED,
                    ..ActiveLearnOptions::default()
                },
            )
            .expect("active learning runs");
            report.attach_regret(data.response());
            let regret = report.regret.expect("regret attached");
            regrets.push(regret);
            points.push(RegretPoint {
                workload: name.to_string(),
                strategy: ACTIVE_STRATEGY.to_string(),
                budget,
                evaluations: report.evaluations,
                best_oracle_s: report.best.oracle.expect("measured best"),
                true_best_s: report.true_best.expect("true best"),
                regret,
            });
        }
        print_row(ACTIVE_STRATEGY, &regrets);
    }

    let report = TuneStrategiesReport {
        title: "lam-tune strategy comparison: regret vs oracle-evaluation budget".to_string(),
        train_fraction: TRAIN_FRACTION,
        seed: SEED,
        points,
    };
    std::fs::create_dir_all("results").expect("results dir");
    let path = "results/tune_strategies.json";
    std::fs::write(
        path,
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("report written");
    println!("\nreport written to {path}");
}

fn print_row(name: &str, regrets: &[f64]) {
    let cells: Vec<String> = regrets.iter().map(|r| format!("{r:5.2}x")).collect();
    println!("  {name:>11} | {}", cells.join("  "));
}
