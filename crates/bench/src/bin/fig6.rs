//! Figure 6: stencil with grid sizes *and loop blocking* — the analytical
//! model is untuned for blocked code (paper: AM MAPE = 42%). Pure Extra
//! Trees vs hybrid, both at training windows {1, 2, 4}%.
//!
//! Paper shape: incorporating the (inaccurate!) analytical model cuts the
//! percentage error roughly in half. No aggregation — stacking only would
//! also be reasonable; the paper aggregates here, so we do too.
//!
//! Run: `cargo run -p lam-bench --release --bin fig6`

use lam_analytical::stencil::BlockedStencilModel;
use lam_bench::report::{print_series, FigureReport, NamedSeries};
use lam_bench::runners::{defaults, stencil_dataset, StandardModels};
use lam_core::evaluate::{analytical_mape, evaluate_model, EvaluationConfig};
use lam_core::hybrid::HybridConfig;
use lam_machine::arch::MachineDescription;
use lam_stencil::config::space_grid_blocking;

fn main() {
    let data = stencil_dataset(&space_grid_blocking());
    let machine = MachineDescription::blue_waters_xe6();
    println!(
        "Fig 6 — stencil, grid sizes + loop blocking ({} configs)",
        data.len()
    );

    let am = BlockedStencilModel::new(machine.clone(), defaults::STENCIL_TIMESTEPS);
    let am_mape = analytical_mape(&data, &am);

    let cfg = EvaluationConfig::new(vec![0.01, 0.02, 0.04], defaults::TRIALS, 61);
    let et = evaluate_model(&data, &cfg, StandardModels::extra_trees);
    print_series("Extra Trees", &et);

    let machine2 = machine.clone();
    let hybrid = evaluate_model(&data, &cfg, move |seed| {
        StandardModels::hybrid(
            Box::new(BlockedStencilModel::new(
                machine2.clone(),
                defaults::STENCIL_TIMESTEPS,
            )),
            // Stacking only: with an AM this inaccurate, averaging its raw
            // prediction in would re-introduce its 40–50% error floor.
            HybridConfig::default(),
            seed,
        )
    });
    print_series("Hybrid", &hybrid);
    println!("\n  analytical model alone: MAPE {am_mape:.1}% (paper: 42%)");

    let report = FigureReport {
        figure: "fig6".into(),
        title: "ET vs Hybrid, stencil grid+blocking".into(),
        dataset_rows: data.len(),
        series: vec![
            NamedSeries {
                label: "Extra Trees".into(),
                points: et,
            },
            NamedSeries {
                label: "Hybrid".into(),
                points: hybrid,
            },
        ],
        notes: vec![("am_mape".into(), am_mape)],
    };
    let path = report.save().expect("write results");
    println!("saved {}", path.display());
}
