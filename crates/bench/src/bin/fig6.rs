//! Figure 6: stencil with grid sizes *and loop blocking* — the analytical
//! model is untuned for blocked code (paper: AM MAPE = 42%). Pure Extra
//! Trees vs hybrid, both at training windows {1, 2, 4}%.
//!
//! Paper shape: incorporating the (inaccurate!) analytical model cuts the
//! percentage error roughly in half. Stacking only: with an AM this
//! inaccurate, averaging its raw prediction in would re-introduce its
//! 40–50% error floor.
//!
//! Run: `cargo run -p lam-bench --release --bin fig6`

use lam_bench::runners::{blue_waters_stencil, run_et_vs_hybrid, EtVsHybridSpec};
use lam_core::hybrid::HybridConfig;
use lam_stencil::config::space_grid_blocking;

fn main() {
    let workload = blue_waters_stencil(space_grid_blocking());
    let report = run_et_vs_hybrid(
        &workload,
        EtVsHybridSpec {
            figure: "fig6".into(),
            title: "Fig 6 — stencil, grid sizes + loop blocking".into(),
            et_fractions: vec![0.01, 0.02, 0.04],
            hybrid_fractions: vec![0.01, 0.02, 0.04],
            hybrid_config: HybridConfig::default(),
            et_label: "Extra Trees".into(),
            hybrid_label: "Hybrid".into(),
            et_seed: 61,
            hybrid_seed: 61,
        },
    );
    println!("  (paper: AM alone 42%)");
    let path = report.save().expect("write results");
    println!("saved {}", path.display());
}
