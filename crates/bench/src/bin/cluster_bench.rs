//! Cluster-gateway benchmark: what the consistent-hash gateway costs over
//! talking to a backend directly, how replicated scatter/gather behaves
//! as backends are added, and whether killing a backend mid-run leaks
//! errors to clients. Written to `results/BENCH_cluster.json`.
//!
//! Four measurements, all closed-loop 256-row `/predict` traffic from 4
//! keep-alive connections against in-process servers on loopback:
//!
//! 1. **direct** — loadgen straight at one reactor backend. The floor.
//! 2. **gateway passthrough** — the same backend fronted by the gateway
//!    (1 backend, replicas 1): the single-shard fast path forwards the
//!    raw body without a JSON parse. Direct and gateway windows are
//!    interleaved against the same live backend and each side's best
//!    p50 is compared. The gate: p50 latency overhead over direct must
//!    stay within 25%.
//! 3. **scaling curve** — N = 2..4 backends with `replicas = N`, so every
//!    request scatters into N row chunks answered in parallel and merged.
//!    Numbers are recorded honestly per N together with the `cores`
//!    field: on a 1-core CI runner client, gateway, and all N backends
//!    time-share one CPU, so the curve shows fan-out *cost*, not the
//!    speedup concurrent hardware would show.
//! 4. **failover** — 2 backends, one killed halfway through the run. The
//!    gate: zero client-visible errors (connection failures to the dead
//!    backend are retried and failed over inside the gateway).
//!
//! Run: `cargo run --release -p lam-bench --bin cluster_bench`
//! Flags: `--seconds N` (default 3) `--out PATH`

use lam_serve::cluster::{start_gateway, GatewayConfig, GatewayHandle};
use lam_serve::http::{self, ServeConfig, ServerOptions};
use lam_serve::loadgen::{self, LoadMode, LoadReport, LoadgenOptions};
use lam_serve::persist::ModelKind;
use lam_serve::registry::{ModelKey, ModelRegistry};
use lam_serve::workload::WorkloadId;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

const CONNECTIONS: usize = 4;
// 256-row requests so per-request predict work dominates: the gateway's
// cost is a roughly fixed per-request hop (~100us of extra socket +
// dispatch on this box), so tiny requests would measure loopback RTT
// noise, not the routing tax the overhead gate is about.
const BATCH_ROWS: usize = 256;
/// Window pairs per ratio cell; the best p50 of each side is compared.
/// Many short interleaved windows because the measured box can be one
/// time-shared core: a background stall poisons whole windows, so each
/// side needs enough independent shots at a clean one.
const RATIO_RUNS: usize = 6;
const POOL: usize = 256;

/// One measured topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ClusterCell {
    label: String,
    backends: usize,
    replicas: usize,
    requests: u64,
    predictions: u64,
    errors: u64,
    shed: u64,
    throughput_preds_per_s: f64,
    p50_us: f64,
    p90_us: f64,
    p99_us: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ClusterReport {
    workload: String,
    kind: String,
    connections: usize,
    batch_rows: usize,
    seconds: f64,
    /// Cores shared by loadgen, gateway, and every backend. On one core
    /// the scaling curve is bound by time-sharing, not by shards.
    cores: usize,
    direct: ClusterCell,
    gateway_passthrough: ClusterCell,
    /// `gateway_passthrough.p50_us / direct.p50_us` — the routing tax.
    overhead_p50_ratio: f64,
    /// N backends with replicas = N: full scatter/gather on every request.
    scaling: Vec<ClusterCell>,
    failover: ClusterCell,
}

fn cell(label: &str, backends: usize, replicas: usize, report: &LoadReport) -> ClusterCell {
    ClusterCell {
        label: label.to_string(),
        backends,
        replicas,
        requests: report.requests,
        predictions: report.predictions,
        errors: report.errors,
        shed: report.shed,
        throughput_preds_per_s: report.throughput,
        p50_us: report.p50_us,
        p90_us: report.p90_us,
        p99_us: report.p99_us,
    }
}

fn print_cell(c: &ClusterCell) {
    println!(
        "  {:>22} ({} backend(s), r={}) | {:>12.0} preds/s  p50 {:>6.0}us  p99 {:>7.0}us  errors {:>3}  shed {:>3}",
        c.label, c.backends, c.replicas, c.throughput_preds_per_s, c.p50_us, c.p99_us, c.errors, c.shed
    );
}

fn drive(addr: &str, seconds: f64) -> LoadReport {
    loadgen::run(&LoadgenOptions {
        addrs: vec![addr.to_string()],
        workload: WorkloadId::get("fmm-small").expect("builtin"),
        kind: ModelKind::Hybrid,
        version: 1,
        seconds,
        connections: CONNECTIONS,
        batch: BATCH_ROWS,
        pool: POOL,
        mode: LoadMode::Closed,
    })
    .expect("loadgen run")
}

fn start_backend(registry: Arc<ModelRegistry>) -> http::ServerHandle {
    http::start_with(
        registry,
        ServeConfig::new(ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServerOptions::default()
        }),
    )
    .expect("backend binds")
}

fn start_cluster(
    root: &Path,
    n: usize,
    replicas: usize,
) -> (Vec<http::ServerHandle>, GatewayHandle) {
    let handles: Vec<http::ServerHandle> = (0..n)
        .map(|_| start_backend(Arc::new(ModelRegistry::new(root.to_path_buf()))))
        .collect();
    let mut cfg = GatewayConfig::new(handles.iter().map(|h| h.local_addr().to_string()).collect());
    // Gateway workers block on upstream exchanges, so anything below the
    // concurrent-connection count queues requests behind a full upstream
    // round-trip and shows up directly as p50.
    cfg.serve.opts.workers = CONNECTIONS + 2;
    cfg.replicas = replicas;
    cfg.probe_interval = Duration::from_millis(200);
    let gateway = start_gateway(cfg).expect("gateway binds");
    (handles, gateway)
}

fn main() {
    let mut seconds: f64 = 3.0;
    let mut out = "results/BENCH_cluster.json".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seconds" => {
                seconds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds requires a number")
            }
            "--out" => out = it.next().expect("--out requires a path"),
            other => panic!("unknown flag `{other}`"),
        }
    }

    let workload = WorkloadId::get("fmm-small").expect("builtin workload");
    let key = ModelKey::new(workload, ModelKind::Hybrid, 1);
    let root = std::env::temp_dir().join("lam_cluster_bench_models");
    println!("training {key}...");
    ModelRegistry::new(root.clone())
        .get(key)
        .expect("model trains");

    println!(
        "\ncluster gateway bench: {CONNECTIONS} connections, {BATCH_ROWS}-row requests, {seconds:.0}s per run\n"
    );

    // 1 + 2. Direct vs gateway passthrough (single shard, so the raw
    // body is forwarded without a JSON parse), measured as RATIO_RUNS
    // *interleaved* window pairs against the same live backend: both
    // sides sample the same noise regime, and the best p50 of each side
    // is compared so one noisy-neighbor window cannot decide the gate.
    let best_of = |runs: Vec<LoadReport>| {
        runs.into_iter()
            .min_by(|a, b| a.p50_us.total_cmp(&b.p50_us))
            .expect("at least one run")
    };
    let (direct, passthrough) = {
        let backend = start_backend(Arc::new(ModelRegistry::new(root.clone())));
        let backend_addr = backend.local_addr().to_string();
        let mut cfg = GatewayConfig::new(vec![backend_addr.clone()]);
        cfg.serve.opts.workers = CONNECTIONS + 2;
        let gateway = start_gateway(cfg).expect("gateway binds");
        let gateway_addr = gateway.local_addr().to_string();
        let window = (seconds / 2.0).max(0.5);
        let mut direct_runs = Vec::new();
        let mut gateway_runs = Vec::new();
        for _ in 0..RATIO_RUNS {
            direct_runs.push(drive(&backend_addr, window));
            gateway_runs.push(drive(&gateway_addr, window));
        }
        gateway.stop();
        backend.stop();
        (
            cell("direct", 1, 1, &best_of(direct_runs)),
            cell("gateway passthrough", 1, 1, &best_of(gateway_runs)),
        )
    };
    print_cell(&direct);
    print_cell(&passthrough);
    let overhead = passthrough.p50_us / direct.p50_us.max(1e-9);
    println!(
        "  gateway p50 overhead over direct: {:.2}x (gate: <= 1.25x)\n",
        overhead
    );

    // 3. Scaling curve: replicas = backends, so every request scatters
    //    across all N and gathers. Honest single-core numbers.
    let mut scaling = Vec::new();
    for n in 2..=4 {
        let (backends, gateway) = start_cluster(&root, n, n);
        let report = drive(&gateway.local_addr().to_string(), seconds);
        gateway.stop();
        for b in backends {
            b.stop();
        }
        let c = cell("scatter/gather", n, n, &report);
        print_cell(&c);
        scaling.push(c);
    }

    // 4. Failover: 2 backends, kill one halfway through the run. The
    //    client must see zero errors.
    let failover = {
        let (mut backends, gateway) = start_cluster(&root, 2, 1);
        let victim = backends.pop().expect("two backends started");
        let killer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_secs_f64(seconds / 2.0));
            victim.stop();
        });
        let report = drive(&gateway.local_addr().to_string(), seconds);
        killer.join().expect("killer thread");
        gateway.stop();
        for b in backends {
            b.stop();
        }
        cell("failover (1 of 2 killed)", 2, 1, &report)
    };
    print_cell(&failover);

    assert!(
        overhead <= 1.25,
        "gateway passthrough p50 {:.0}us exceeds 25% over direct p50 {:.0}us ({overhead:.2}x)",
        passthrough.p50_us,
        direct.p50_us
    );
    assert_eq!(
        failover.errors, 0,
        "killing a backend leaked {} error(s) to clients",
        failover.errors
    );
    println!("\n  gates passed: overhead {overhead:.2}x <= 1.25x, failover errors == 0");

    let report = ClusterReport {
        workload: workload.to_string(),
        kind: ModelKind::Hybrid.to_string(),
        connections: CONNECTIONS,
        batch_rows: BATCH_ROWS,
        seconds,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        direct,
        gateway_passthrough: passthrough,
        overhead_p50_ratio: overhead,
        scaling,
        failover,
    };
    if let Some(parent) = Path::new(&out).parent() {
        std::fs::create_dir_all(parent).expect("results dir");
    }
    std::fs::write(&out, serde_json::to_string_pretty(&report).expect("json")).expect("write");
    println!("  report written to {out}");
}
