//! Figure 7: stencil with grid sizes *and multithreading* — a region the
//! serial analytical model does not cover at all. Pure Extra Trees vs
//! hybrid at training windows {1, 2, 4}%.
//!
//! Paper protocol: "Here we do not aggregate the analytical and stacked
//! models predictions as the analytical models do not capture the
//! parallelism" — stacking only. The workload's `analytical_model()`
//! returns the serial model for the threaded feature layout, encoding
//! exactly that protocol.
//!
//! Run: `cargo run -p lam-bench --release --bin fig7`

use lam_bench::runners::{blue_waters_stencil, run_et_vs_hybrid, EtVsHybridSpec};
use lam_core::hybrid::HybridConfig;
use lam_stencil::config::space_grid_threads;

fn main() {
    let workload = blue_waters_stencil(space_grid_threads());
    let report = run_et_vs_hybrid(
        &workload,
        EtVsHybridSpec {
            figure: "fig7".into(),
            title: "Fig 7 — stencil, grid sizes + threads, serial AM".into(),
            et_fractions: vec![0.01, 0.02, 0.04],
            hybrid_fractions: vec![0.01, 0.02, 0.04],
            hybrid_config: HybridConfig::default(),
            et_label: "Extra Trees".into(),
            hybrid_label: "Hybrid (serial AM, stacking only)".into(),
            et_seed: 71,
            hybrid_seed: 71,
        },
    );
    let path = report.save().expect("write results");
    println!("saved {}", path.display());
}
