//! Figure 7: stencil with grid sizes *and multithreading* — a region the
//! serial analytical model does not cover at all. Pure Extra Trees vs
//! hybrid at training windows {1, 2, 4}%.
//!
//! Paper protocol: "Here we do not aggregate the analytical and stacked
//! models predictions as the analytical models do not capture the
//! parallelism" — stacking only.
//!
//! Run: `cargo run -p lam-bench --release --bin fig7`

use lam_analytical::stencil::StencilAnalyticalModel;
use lam_bench::report::{print_series, FigureReport, NamedSeries};
use lam_bench::runners::{defaults, stencil_dataset, StandardModels};
use lam_core::evaluate::{analytical_mape, evaluate_model, EvaluationConfig};
use lam_core::hybrid::HybridConfig;
use lam_machine::arch::MachineDescription;
use lam_stencil::config::space_grid_threads;

fn main() {
    let data = stencil_dataset(&space_grid_threads());
    let machine = MachineDescription::blue_waters_xe6();
    println!(
        "Fig 7 — stencil, grid sizes + threads, serial AM ({} configs)",
        data.len()
    );

    let am = StencilAnalyticalModel::new(machine.clone(), defaults::STENCIL_TIMESTEPS);
    let am_mape = analytical_mape(&data, &am);

    let cfg = EvaluationConfig::new(vec![0.01, 0.02, 0.04], defaults::TRIALS, 71);
    let et = evaluate_model(&data, &cfg, StandardModels::extra_trees);
    print_series("Extra Trees", &et);

    let machine2 = machine.clone();
    let hybrid = evaluate_model(&data, &cfg, move |seed| {
        StandardModels::hybrid(
            Box::new(StencilAnalyticalModel::new(
                machine2.clone(),
                defaults::STENCIL_TIMESTEPS,
            )),
            HybridConfig::default(), // no aggregation (paper Fig 7 protocol)
            seed,
        )
    });
    print_series("Hybrid (serial AM, stacking only)", &hybrid);
    println!("\n  serial analytical model alone: MAPE {am_mape:.1}%");

    let report = FigureReport {
        figure: "fig7".into(),
        title: "ET vs Hybrid, stencil grid+threads".into(),
        dataset_rows: data.len(),
        series: vec![
            NamedSeries {
                label: "Extra Trees".into(),
                points: et,
            },
            NamedSeries {
                label: "Hybrid".into(),
                points: hybrid,
            },
        ],
        notes: vec![("am_mape".into(), am_mape)],
    };
    let path = report.save().expect("write results");
    println!("saved {}", path.display());
}
