//! Serving-stack A/B: the retired blocking thread-per-connection server
//! (`lam_serve::reference`) versus the event-driven reactor with
//! cross-connection micro-batching, measured with the in-crate load
//! generator and written to `results/BENCH_serve.json`.
//!
//! Three measurements, all on concurrent single-row traffic (4 keep-alive
//! connections, batch 1 — the workload the reactor was built for):
//!
//! 1. **threaded baseline** — closed-loop loadgen against the blocking
//!    reference server. One row per wire round-trip, no cross-request
//!    batching possible.
//! 2. **reactor** — pipelined loadgen (8 in flight per connection)
//!    against the event-driven server. The submission-queue scheduler
//!    coalesces rows from all connections into micro-batches.
//! 3. **overload** — open-loop loadgen at well past capacity against a
//!    deliberately small dispatch queue: the point is that the server
//!    sheds with fast 503s (`shed > 0`) instead of queueing until
//!    clients time out (`errors == 0`).
//!
//! Run: `cargo run --release -p lam-bench --bin serve_bench`
//! Flags: `--seconds N` (default 3) `--out PATH`

use lam_serve::http::{self, ServeConfig, ServerOptions};
use lam_serve::loadgen::{self, LoadMode, LoadReport, LoadgenOptions};
use lam_serve::persist::ModelKind;
use lam_serve::reference;
use lam_serve::registry::{ModelKey, ModelRegistry};
use lam_serve::workload::WorkloadId;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;

const CONNECTIONS: usize = 4;
const PIPELINE: usize = 8;
const POOL: usize = 256;

/// One measured server configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeCell {
    server: String,
    mode: String,
    requests: u64,
    predictions: u64,
    errors: u64,
    shed: u64,
    throughput_preds_per_s: f64,
    p50_us: f64,
    p90_us: f64,
    p95_us: f64,
    p99_us: f64,
    batch_occupancy_mean: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ServeReport {
    workload: String,
    kind: String,
    connections: usize,
    batch_rows: usize,
    seconds: f64,
    /// Cores available to client + server + scheduler combined. The
    /// reactor's win over the threaded seed scales with this: on one
    /// core every run is bound by per-request CPU (JSON, routing,
    /// accounting) shared between both sides of the socket, so syscall
    /// amortization and cross-connection batching bound the ratio well
    /// below what concurrent hardware shows.
    cores: usize,
    threaded_baseline: ServeCell,
    reactor: ServeCell,
    overload: ServeCell,
    speedup: f64,
}

fn cell(server: &str, report: &LoadReport, occupancy: f64) -> ServeCell {
    ServeCell {
        server: server.to_string(),
        mode: report.mode.clone(),
        requests: report.requests,
        predictions: report.predictions,
        errors: report.errors,
        shed: report.shed,
        throughput_preds_per_s: report.throughput,
        p50_us: report.p50_us,
        p90_us: report.p90_us,
        p95_us: report.p95_us,
        p99_us: report.p99_us,
        batch_occupancy_mean: occupancy,
    }
}

/// Drive one loadgen run and return the report plus the server-side
/// batch-occupancy mean (submissions per flush) over the run's window.
fn drive(addr: &str, mode: LoadMode, seconds: f64) -> (LoadReport, f64) {
    let scrape = |a: &str| {
        let mut c = loadgen::HttpClient::connect(a).expect("scrape connection");
        loadgen::MetricsScrape::fetch(&mut c).expect("metrics scrape")
    };
    let before = scrape(addr);
    let report = loadgen::run(&LoadgenOptions {
        addrs: vec![addr.to_string()],
        workload: WorkloadId::get("fmm-small").expect("builtin"),
        kind: ModelKind::Hybrid,
        version: 1,
        seconds,
        connections: CONNECTIONS,
        batch: 1,
        pool: POOL,
        mode,
    })
    .expect("loadgen run");
    let after = scrape(addr);
    let (c0, s0) = before.histogram_totals("lam_batch_occupancy", None);
    let (c1, s1) = after.histogram_totals("lam_batch_occupancy", None);
    let occupancy = match c1.saturating_sub(c0) {
        0 => 0.0,
        flushes => s1.saturating_sub(s0) as f64 / flushes as f64,
    };
    (report, occupancy)
}

fn print_cell(c: &ServeCell) {
    println!(
        "  {:>18} {:>14} | {:>12.0} preds/s  p50 {:>6.0}us  p99 {:>7.0}us  shed {:>5}  occupancy {:.2}",
        c.server, c.mode, c.throughput_preds_per_s, c.p50_us, c.p99_us, c.shed, c.batch_occupancy_mean
    );
}

fn main() {
    let mut seconds = 3.0;
    let mut out = "results/BENCH_serve.json".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seconds" => {
                seconds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seconds requires a number")
            }
            "--out" => out = it.next().expect("--out requires a path"),
            other => panic!("unknown flag `{other}`"),
        }
    }

    let workload = WorkloadId::get("fmm-small").expect("builtin workload");
    let key = ModelKey::new(workload, ModelKind::Hybrid, 1);
    let registry = Arc::new(ModelRegistry::new(
        std::env::temp_dir().join("lam_serve_bench_models"),
    ));
    println!("training {key}...");
    registry.get(key).expect("model trains");

    // 1. Threaded baseline: the seed's blocking server, closed loop.
    println!("\nserving A/B: {CONNECTIONS} connections, 1-row requests, {seconds:.0}s per run\n");
    let opts = ServerOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        ..ServerOptions::default()
    };
    let threaded = {
        let handle = reference::start_reference(Arc::clone(&registry), opts.clone())
            .expect("reference server binds");
        let addr = handle.local_addr().to_string();
        let (report, occupancy) = drive(&addr, LoadMode::Closed, seconds);
        handle.stop();
        cell("threaded (seed)", &report, occupancy)
    };
    print_cell(&threaded);

    // 2. Reactor: event-driven server, pipelined client so the wire is
    //    never the bottleneck.
    let reactor = {
        let handle = http::start_with(Arc::clone(&registry), ServeConfig::new(opts.clone()))
            .expect("reactor binds");
        let addr = handle.local_addr().to_string();
        let (report, occupancy) = drive(&addr, LoadMode::Pipeline(PIPELINE), seconds);
        handle.stop();
        cell("reactor", &report, occupancy)
    };
    print_cell(&reactor);

    // 3. Overload: a small dispatch queue under an open-loop flood. The
    //    healthy outcome is nonzero sheds and zero client errors.
    let overload = {
        let mut cfg = ServeConfig::new(opts);
        cfg.dispatch_queue = 8;
        let handle = http::start_with(Arc::clone(&registry), cfg).expect("reactor binds");
        let addr = handle.local_addr().to_string();
        let offered = (reactor.throughput_preds_per_s * 3.0).max(10_000.0);
        let (report, occupancy) = drive(&addr, LoadMode::OpenLoop { rps: offered }, seconds);
        handle.stop();
        cell("reactor (overload)", &report, occupancy)
    };
    print_cell(&overload);

    let speedup = reactor.throughput_preds_per_s / threaded.throughput_preds_per_s.max(1e-9);
    println!("\n  reactor vs threaded: {speedup:.2}x throughput on concurrent 1-row traffic");
    assert!(
        overload.shed > 0,
        "overload run must shed (got {} errors instead)",
        overload.errors
    );
    assert_eq!(
        overload.errors, 0,
        "overload must produce 503s, not client-visible failures"
    );

    let report = ServeReport {
        workload: workload.to_string(),
        kind: ModelKind::Hybrid.to_string(),
        connections: CONNECTIONS,
        batch_rows: 1,
        seconds,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        threaded_baseline: threaded,
        reactor,
        overload,
        speedup,
    };
    if let Some(parent) = Path::new(&out).parent() {
        std::fs::create_dir_all(parent).expect("results dir");
    }
    std::fs::write(&out, serde_json::to_string_pretty(&report).expect("json")).expect("write");
    println!("  report written to {out}");
}
