//! SpMV panel — the third scenario, beyond the paper's figures: pure
//! Extra Trees vs the hybrid built on the untuned roofline bound, over
//! the `(rows, nnz, rb, t)` space, with the analytical-only MAPE printed
//! as the baseline the hybrid must beat.
//!
//! The roofline model knows the bandwidth bound cold but ignores row
//! blocking, loop overheads, and threads entirely, so it lands far from
//! the oracle on the threaded part of the space — the same
//! "representative but inaccurate" regime the paper exploits for the
//! stencil and FMM scenarios. Responses span decades across the space, so
//! the hybrid stacks `ln(am)`.
//!
//! Run: `cargo run -p lam-bench --release --bin spmv_model`

use lam_bench::runners::{blue_waters_spmv, run_et_vs_hybrid, EtVsHybridSpec};
use lam_core::hybrid::HybridConfig;
use lam_spmv::config::space_spmv;

fn main() {
    let workload = blue_waters_spmv(space_spmv());
    let report = run_et_vs_hybrid(
        &workload,
        EtVsHybridSpec {
            figure: "spmv".into(),
            title: "SpMV — banded CSR, (rows, nnz, rb, t) space".into(),
            et_fractions: vec![0.05, 0.10, 0.20],
            hybrid_fractions: vec![0.05, 0.10, 0.20],
            hybrid_config: HybridConfig {
                log_feature: true,
                ..HybridConfig::default()
            },
            et_label: "Extra Trees (5/10/20% training)".into(),
            hybrid_label: "Hybrid roofline+ET (5/10/20% training)".into(),
            et_seed: 71,
            hybrid_seed: 72,
        },
    );
    let path = report.save().expect("write results");
    println!("saved {}", path.display());
}
