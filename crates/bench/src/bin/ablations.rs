//! Ablation study over the hybrid model's design choices — the knobs the
//! paper fixes without sweeping:
//!
//! 1. aggregation weight (0 = analytical only, 1 = stacked only);
//! 2. raw vs. log-transformed stacked feature;
//! 3. ML base model under the stack (extra trees / random forest / single
//!    tree).
//!
//! Generic over [`Workload`]: every variant stacks the scenario's own
//! analytical model, so the sweep applies unchanged to any new scenario.
//!
//! Run: `cargo run -p lam-bench --release --bin ablations`

use lam_bench::report::{print_series, FigureReport, NamedSeries};
use lam_bench::runners::{blue_waters_fmm, blue_waters_stencil, defaults, StandardModels};
use lam_core::evaluate::{evaluate_model, EvaluationConfig};
use lam_core::hybrid::{HybridConfig, HybridModel};
use lam_core::workload::Workload;
use lam_data::Dataset;

fn run_variant<F>(
    data: &Dataset,
    cfg: &EvaluationConfig,
    label: &str,
    series: &mut Vec<NamedSeries>,
    factory: F,
) where
    F: Fn(u64) -> Box<dyn lam_ml::model::Regressor> + Sync,
{
    let points = evaluate_model(data, cfg, factory);
    print_series(label, &points);
    series.push(NamedSeries {
        label: label.to_string(),
        points,
    });
}

fn main() {
    let mut all = Vec::new();

    // ---- Stencil grid+blocking, 2% training window.
    let stencil = blue_waters_stencil(lam_stencil::config::space_grid_blocking());
    let data = stencil.generate_dataset();
    let cfg = EvaluationConfig::new(vec![0.02], defaults::TRIALS, 91);
    println!("=== ablation: stencil grid+blocking @ 2% training ===");

    for (label, w) in [
        ("stencil: stacking only (w=1 equivalent)", None),
        ("stencil: aggregate w=0.75", Some(0.75)),
        ("stencil: aggregate w=0.5 (paper default)", Some(0.5)),
        ("stencil: aggregate w=0.25", Some(0.25)),
    ] {
        run_variant(&data, &cfg, label, &mut all, |seed| {
            let config = match w {
                None => HybridConfig::default(),
                Some(sw) => HybridConfig {
                    aggregate: true,
                    stacked_weight: sw,
                    log_feature: false,
                },
            };
            StandardModels::hybrid_for(&stencil, config, seed)
        });
    }

    for (label, base) in [
        (
            "stencil: base = single tree",
            StandardModels::decision_tree as fn(u64) -> Box<dyn lam_ml::model::Regressor>,
        ),
        (
            "stencil: base = random forest",
            StandardModels::random_forest,
        ),
        ("stencil: base = extra trees", StandardModels::extra_trees),
    ] {
        run_variant(&data, &cfg, label, &mut all, |seed| {
            Box::new(HybridModel::new(
                stencil.analytical_model(),
                base(seed),
                HybridConfig::default(),
            ))
        });
    }

    // ---- FMM, 20% training window: raw vs log stacked feature.
    let fmm = blue_waters_fmm(lam_fmm::config::space_paper());
    let data = fmm.generate_dataset();
    let cfg = EvaluationConfig::new(vec![0.20], defaults::TRIALS, 92);
    println!("\n=== ablation: FMM @ 20% training ===");
    for (label, log_feature) in [
        ("fmm: raw AM feature", false),
        ("fmm: log AM feature", true),
    ] {
        run_variant(&data, &cfg, label, &mut all, |seed| {
            StandardModels::hybrid_for(
                &fmm,
                HybridConfig {
                    log_feature,
                    ..HybridConfig::default()
                },
                seed,
            )
        });
    }
    // Aggregating a 187%-MAPE AM should *hurt* on FMM — verify the paper's
    // implied guidance that aggregation requires a representative AM.
    run_variant(
        &data,
        &cfg,
        "fmm: aggregate w=0.5 (expected worse)",
        &mut all,
        |seed| {
            StandardModels::hybrid_for(
                &fmm,
                HybridConfig {
                    aggregate: true,
                    stacked_weight: 0.5,
                    log_feature: true,
                },
                seed,
            )
        },
    );

    let report = FigureReport {
        figure: "ablations".into(),
        title: "hybrid-model design-choice ablations".into(),
        dataset_rows: data.len(),
        series: all,
        notes: vec![],
    };
    let path = report.save().expect("write results");
    println!("\nsaved {}", path.display());
}
