//! Observability overhead report: instrumented vs uninstrumented
//! cached-predict ns/row (batch 1 / 64 / 256) plus the `/metrics`
//! render cost, written to `results/BENCH_obs.json`.
//!
//! "Uninstrumented" is `lam_obs::set_enabled(false)` — every call site
//! degrades to one relaxed atomic load, which is the closest observable
//! stand-in for not having the instrumentation at all. Measurements
//! interleave the two sides and keep the per-side minimum across trials,
//! so a background scheduler blip cannot charge its noise to one side.
//!
//! The acceptance budget is <2% overhead at batch 256. The Criterion
//! twin (`cargo bench -p lam-bench --bench obs_overhead`) gives the
//! statistically rigorous numbers; this binary is the quick CI-friendly
//! record checked into the repo.
//!
//! Run: `cargo run --release -p lam-bench --bin obs`

use lam_serve::persist::ModelKind;
use lam_serve::registry::{ModelKey, ModelRegistry};
use lam_serve::workload::WorkloadId;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

const BATCHES: [usize; 3] = [1, 64, 256];
const TRIALS: usize = 25;

/// Overhead at one batch size, ns/row through the warm-cache path.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct OverheadCell {
    batch: usize,
    instrumented_ns_per_row: f64,
    uninstrumented_ns_per_row: f64,
    overhead_pct: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ObsReport {
    workload: String,
    kind: String,
    cells: Vec<OverheadCell>,
    metrics_render_us: f64,
    budget_pct: f64,
    within_budget: bool,
}

/// Wall-clock a closure: warm up, then run enough iterations to fill a
/// ~40ms window and return mean ns per call.
fn time_ns(mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f();
    }
    let probe = Instant::now();
    f();
    let per_iter = probe.elapsed().as_nanos().max(1);
    let iters = (40_000_000 / per_iter).clamp(1, 1_000_000) as u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

/// Compare two closures on a noisy machine: run [`TRIALS`] interleaved
/// ~8ms windows of each (identical iteration counts) and keep each
/// side's minimum. Scheduler noise only ever *adds* time, so the minima
/// approach both true floors; the floors differ by exactly the code the
/// instrumented side always executes — the overhead being measured.
fn min_ns_pair(mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    for _ in 0..3 {
        a();
        b();
    }
    let probe = Instant::now();
    a();
    let per_iter = probe.elapsed().as_nanos().max(1);
    let iters = (8_000_000 / per_iter).clamp(1, 1_000_000) as u32;
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    for _ in 0..TRIALS {
        let start = Instant::now();
        for _ in 0..iters {
            a();
        }
        best_a = best_a.min(start.elapsed().as_nanos() as f64 / f64::from(iters));
        let start = Instant::now();
        for _ in 0..iters {
            b();
        }
        best_b = best_b.min(start.elapsed().as_nanos() as f64 / f64::from(iters));
    }
    (best_a, best_b)
}

fn main() {
    let workload = WorkloadId::get("fmm-small").expect("builtin workload");
    let kind = ModelKind::Hybrid;
    let root = std::env::temp_dir().join("lam_bench_obs_models");
    let registry = ModelRegistry::new(root);
    let model = registry
        .get(ModelKey::new(workload, kind, 1))
        .expect("train or load");

    println!("observability overhead: cached predict, {workload}/{kind}\n");
    println!(
        "  {:>6} | {:>16} {:>18} {:>9}",
        "batch", "instrumented/row", "uninstrumented/row", "overhead"
    );
    println!("  {}", "-".repeat(56));

    let mut cells = Vec::new();
    for batch in BATCHES {
        let rows = workload.sample_rows(batch);
        model.predict(&rows); // warm the prediction cache
        let (on, off) = min_ns_pair(
            || {
                lam_obs::set_enabled(true);
                std::hint::black_box(model.predict(std::hint::black_box(&rows)).predictions.len());
            },
            || {
                lam_obs::set_enabled(false);
                std::hint::black_box(model.predict(std::hint::black_box(&rows)).predictions.len());
            },
        );
        lam_obs::set_enabled(true);
        let on_row = on / batch as f64;
        let off_row = off / batch as f64;
        let overhead_pct = 100.0 * (on_row - off_row) / off_row;
        println!("  {batch:>6} | {on_row:>13.1} ns {off_row:>15.1} ns {overhead_pct:>8.2}%");
        cells.push(OverheadCell {
            batch,
            instrumented_ns_per_row: on_row,
            uninstrumented_ns_per_row: off_row,
            overhead_pct,
        });
    }

    // Rendering cost of one `/metrics` scrape over the populated
    // registry (counters/histograms fed by the loop above).
    let metrics_render_us = time_ns(|| {
        std::hint::black_box(lam_obs::expose::render_prometheus(
            &lam_obs::global().snapshot(),
        ));
    }) / 1000.0;
    println!("\n/metrics render: {metrics_render_us:.1} us");

    let budget_pct = 2.0;
    let within_budget = cells
        .iter()
        .find(|c| c.batch == 256)
        .is_some_and(|c| c.overhead_pct < budget_pct);
    println!(
        "batch-256 overhead within {budget_pct}% budget: {}",
        if within_budget { "yes" } else { "NO" }
    );

    let report = ObsReport {
        workload: workload.to_string(),
        kind: kind.to_string(),
        cells,
        metrics_render_us,
        budget_pct,
        within_budget,
    };
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("results dir");
    let path = dir.join("BENCH_obs.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("write report");
    println!("wrote {}", path.display());
    if !within_budget {
        std::process::exit(1);
    }
}
