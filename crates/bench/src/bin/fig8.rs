//! Figure 8: FMM parameter tuning, `X = (t, N, q, k)` — the untuned FMM
//! analytical model (paper: MAPE = 84.5%) stacked under Extra Trees.
//! Pure Extra Trees vs hybrid at training windows {15, 20, 25}%.
//!
//! Paper shape: pure ML sits above 100% MAPE; the hybrid drops it to
//! ≈ 15–35%. The FMM needs larger training windows than the stencil
//! because of the algorithm's complexity. The hybrid stacks on the *log*
//! of the AM prediction (FMM times span orders of magnitude), with no
//! aggregation.
//!
//! Run: `cargo run -p lam-bench --release --bin fig8`

use lam_bench::runners::{blue_waters_fmm, run_et_vs_hybrid, EtVsHybridSpec};
use lam_core::hybrid::HybridConfig;
use lam_fmm::config::space_paper;

fn main() {
    let workload = blue_waters_fmm(space_paper());
    let report = run_et_vs_hybrid(
        &workload,
        EtVsHybridSpec {
            figure: "fig8".into(),
            title: "Fig 8 — FMM (t,N,q,k)".into(),
            et_fractions: vec![0.15, 0.20, 0.25],
            hybrid_fractions: vec![0.15, 0.20, 0.25],
            hybrid_config: HybridConfig {
                log_feature: true,
                ..HybridConfig::default()
            },
            et_label: "Extra Trees".into(),
            hybrid_label: "Hybrid".into(),
            et_seed: 81,
            hybrid_seed: 81,
        },
    );
    println!("  (paper: AM alone 84.5%)");
    let path = report.save().expect("write results");
    println!("saved {}", path.display());
}
