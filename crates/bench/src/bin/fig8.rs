//! Figure 8: FMM parameter tuning, `X = (t, N, q, k)` — the untuned FMM
//! analytical model (paper: MAPE = 84.5%) stacked under Extra Trees.
//! Pure Extra Trees vs hybrid at training windows {15, 20, 25}%.
//!
//! Paper shape: pure ML sits above 100% MAPE; the hybrid drops it to
//! ≈ 15–35%. The FMM needs larger training windows than the stencil
//! because of the algorithm's complexity.
//!
//! Run: `cargo run -p lam-bench --release --bin fig8`

use lam_analytical::fmm::FmmAnalyticalModel;
use lam_bench::report::{print_series, FigureReport, NamedSeries};
use lam_bench::runners::{defaults, fmm_dataset, StandardModels};
use lam_core::evaluate::{analytical_mape, evaluate_model, EvaluationConfig};
use lam_core::hybrid::HybridConfig;
use lam_fmm::config::space_paper;
use lam_machine::arch::MachineDescription;

fn main() {
    let data = fmm_dataset(&space_paper());
    let machine = MachineDescription::blue_waters_xe6();
    println!("Fig 8 — FMM (t,N,q,k) ({} configs)", data.len());

    let am = FmmAnalyticalModel::new(machine.clone());
    let am_mape = analytical_mape(&data, &am);

    let cfg = EvaluationConfig::new(vec![0.15, 0.20, 0.25], defaults::TRIALS, 81);
    let et = evaluate_model(&data, &cfg, StandardModels::extra_trees);
    print_series("Extra Trees", &et);

    let machine2 = machine.clone();
    let hybrid = evaluate_model(&data, &cfg, move |seed| {
        StandardModels::hybrid(
            Box::new(FmmAnalyticalModel::new(machine2.clone())),
            // Stack on the log of the AM prediction: FMM times span orders
            // of magnitude. No aggregation (the AM is untuned, 84.5%-class
            // error).
            HybridConfig {
                log_feature: true,
                ..HybridConfig::default()
            },
            seed,
        )
    });
    print_series("Hybrid", &hybrid);
    println!("\n  analytical model alone: MAPE {am_mape:.1}% (paper: 84.5%)");

    let report = FigureReport {
        figure: "fig8".into(),
        title: "ET vs Hybrid, FMM".into(),
        dataset_rows: data.len(),
        series: vec![
            NamedSeries {
                label: "Extra Trees".into(),
                points: et,
            },
            NamedSeries {
                label: "Hybrid".into(),
                points: hybrid,
            },
        ],
        notes: vec![("am_mape".into(), am_mape)],
    };
    let path = report.save().expect("write results");
    println!("saved {}", path.display());
}
