//! Figure 3B: MAPE of Decision Trees / Extra Trees / Random Forests vs
//! training-set size on the FMM dataset, `X = (t, N, q, k)`, training
//! windows {10, 20, 40, 60, 80}%.
//!
//! Paper shape: even with 80% of the data for training, pure ML stays at
//! MAPE ≈ 100–200% — execution times span orders of magnitude and trees
//! extrapolate the k⁶ scaling poorly.
//!
//! Run: `cargo run -p lam-bench --release --bin fig3_fmm`

use lam_bench::report::{print_series, FigureReport, NamedSeries};
use lam_bench::runners::{defaults, fmm_dataset, StandardModels};
use lam_core::evaluate::{evaluate_model, EvaluationConfig};
use lam_fmm::config::space_paper;

fn main() {
    let data = fmm_dataset(&space_paper());
    println!("Fig 3B — pure-ML models on FMM (t,N,q,k) ({} configs)", data.len());
    let config = EvaluationConfig::new(
        vec![0.10, 0.20, 0.40, 0.60, 0.80],
        defaults::TRIALS,
        32,
    );
    let mut series = Vec::new();
    for (label, factory) in [
        (
            "Decision Trees",
            StandardModels::decision_tree as fn(u64) -> _,
        ),
        ("Extra Trees", StandardModels::extra_trees as fn(u64) -> _),
        (
            "Random Forests",
            StandardModels::random_forest as fn(u64) -> _,
        ),
    ] {
        let points = evaluate_model(&data, &config, factory);
        print_series(label, &points);
        series.push(NamedSeries {
            label: label.to_string(),
            points,
        });
    }
    let report = FigureReport {
        figure: "fig3_fmm".into(),
        title: "MAPE of ML models vs training size, FMM".into(),
        dataset_rows: data.len(),
        series,
        notes: vec![],
    };
    let path = report.save().expect("write results");
    println!("\nsaved {}", path.display());
}
