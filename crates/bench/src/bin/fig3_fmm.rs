//! Figure 3B: MAPE of Decision Trees / Extra Trees / Random Forests vs
//! training-set size on the FMM dataset, `X = (t, N, q, k)`, training
//! windows {10, 20, 40, 60, 80}%.
//!
//! Paper shape: even with 80% of the data for training, pure ML stays at
//! MAPE ≈ 100–200% — execution times span orders of magnitude and trees
//! extrapolate the k⁶ scaling poorly.
//!
//! Run: `cargo run -p lam-bench --release --bin fig3_fmm`

use lam_bench::runners::{blue_waters_fmm, run_pure_ml_panel};
use lam_fmm::config::space_paper;

fn main() {
    let workload = blue_waters_fmm(space_paper());
    let report = run_pure_ml_panel(
        &workload,
        "fig3_fmm",
        "Fig 3B — pure-ML models on FMM (t,N,q,k)",
        vec![0.10, 0.20, 0.40, 0.60, 0.80],
        32,
    );
    let path = report.save().expect("write results");
    println!("\nsaved {}", path.display());
}
