//! §VII analytical-model accuracy baselines.
//!
//! The paper quotes the *untuned* analytical models at MAPE ≈ 42 % on the
//! stencil grid+blocking dataset and ≈ 84.5 % on the FMM dataset, and uses
//! an accurate AM for the grid-only dataset (Fig 5). This binary prints
//! our equivalents on the simulated Blue Waters node.
//!
//! Run: `cargo run -p lam-bench --release --bin am_accuracy`

use lam_analytical::fmm::FmmAnalyticalModel;
use lam_analytical::stencil::{BlockedStencilModel, StencilAnalyticalModel};
use lam_bench::runners::{defaults, fmm_dataset, stencil_dataset};
use lam_bench::report::print_note;
use lam_core::evaluate::analytical_mape;
use lam_machine::arch::MachineDescription;
use lam_stencil::config::{space_grid_blocking, space_grid_only, space_grid_threads};

fn main() {
    let machine = MachineDescription::blue_waters_xe6();
    println!("Analytical-model MAPE on the simulated {}", machine.name);
    println!("(paper, untuned on Blue Waters: blocking 42%, FMM 84.5%)\n");

    let grid = stencil_dataset(&space_grid_only());
    let am = StencilAnalyticalModel::new(machine.clone(), defaults::STENCIL_TIMESTEPS);
    print_note("stencil grid-only AM MAPE (Fig 5 regime)", analytical_mape(&grid, &am));

    let blocking = stencil_dataset(&space_grid_blocking());
    let am = BlockedStencilModel::new(machine.clone(), defaults::STENCIL_TIMESTEPS);
    print_note(
        "stencil grid+blocking AM MAPE (paper: 42)",
        analytical_mape(&blocking, &am),
    );

    let threads = stencil_dataset(&space_grid_threads());
    let am = StencilAnalyticalModel::new(machine.clone(), defaults::STENCIL_TIMESTEPS);
    print_note(
        "stencil grid+threads, serial AM MAPE (Fig 7 regime)",
        analytical_mape(&threads, &am),
    );

    let fmm = fmm_dataset(&lam_fmm::config::space_paper());
    let am = FmmAnalyticalModel::new(machine);
    print_note("fmm AM MAPE (paper: 84.5)", analytical_mape(&fmm, &am));
}
