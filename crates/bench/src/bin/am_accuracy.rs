//! §VII analytical-model accuracy baselines.
//!
//! The paper quotes the *untuned* analytical models at MAPE ≈ 42 % on the
//! stencil grid+blocking dataset and ≈ 84.5 % on the FMM dataset, and uses
//! an accurate AM for the grid-only dataset (Fig 5). This binary prints
//! our equivalents on the simulated Blue Waters node — each workload
//! supplies the analytical model the paper pairs with its feature layout.
//!
//! Run: `cargo run -p lam-bench --release --bin am_accuracy`

use lam_bench::report::print_note;
use lam_bench::runners::{blue_waters_fmm, blue_waters_stencil};
use lam_core::evaluate::analytical_mape;
use lam_core::workload::Workload;
use lam_stencil::config::{space_grid_blocking, space_grid_only, space_grid_threads};

fn report_am<W: Workload>(label: &str, workload: &W) {
    let data = workload.generate_dataset();
    print_note(label, analytical_mape(&data, &*workload.analytical_model()));
}

fn main() {
    println!("Analytical-model MAPE on the simulated Blue Waters node");
    println!("(paper, untuned on Blue Waters: blocking 42%, FMM 84.5%)\n");

    report_am(
        "stencil grid-only AM MAPE (Fig 5 regime)",
        &blue_waters_stencil(space_grid_only()),
    );
    report_am(
        "stencil grid+blocking AM MAPE (paper: 42)",
        &blue_waters_stencil(space_grid_blocking()),
    );
    report_am(
        "stencil grid+threads, serial AM MAPE (Fig 7 regime)",
        &blue_waters_stencil(space_grid_threads()),
    );
    report_am(
        "fmm AM MAPE (paper: 84.5)",
        &blue_waters_fmm(lam_fmm::config::space_paper()),
    );
}
