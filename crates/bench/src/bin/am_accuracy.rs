//! §VII analytical-model accuracy baselines.
//!
//! The paper quotes the *untuned* analytical models at MAPE ≈ 42 % on the
//! stencil grid+blocking dataset and ≈ 84.5 % on the FMM dataset, and uses
//! an accurate AM for the grid-only dataset (Fig 5). This binary prints
//! our equivalents on the simulated Blue Waters node — each workload
//! supplies the analytical model the paper pairs with its feature layout.
//!
//! Run: `cargo run -p lam-bench --release --bin am_accuracy`

use lam_bench::report::print_note;
use lam_bench::runners::servable;
use lam_core::evaluate::analytical_mape;

fn report_am(label: &str, name: &str) {
    let entry = servable(name).expect("builtin workload");
    let data = entry.dataset();
    print_note(
        label,
        analytical_mape(&data, &*entry.workload().analytical_model()),
    );
}

fn main() {
    println!("Analytical-model MAPE on the simulated Blue Waters node");
    println!("(paper, untuned on Blue Waters: blocking 42%, FMM 84.5%)\n");

    report_am("stencil grid-only AM MAPE (Fig 5 regime)", "stencil-grid");
    report_am(
        "stencil grid+blocking AM MAPE (paper: 42)",
        "stencil-grid-blocking",
    );
    report_am(
        "stencil grid+threads, serial AM MAPE (Fig 7 regime)",
        "stencil-grid-threads",
    );
    report_am("fmm AM MAPE (paper: 84.5)", "fmm");
}
