//! Distributed-tracing overhead report: traced vs untraced warm-cache
//! `/predict` round-trips (batch 1 / 64 / 256) through a real in-process
//! HTTP server, written to `results/BENCH_trace.json`.
//!
//! "Traced" is `lam_obs::set_enabled(true)` plus an `x-lam-trace` header
//! on every request, so the server parses the context, derives child
//! spans, and runs the tail-sampling decision per span. "Untraced" is
//! `lam_obs::set_enabled(false)` and no header — every trace call site
//! degrades to one relaxed atomic load. Headers for the traced side are
//! pre-generated outside the timed loops so the comparison charges the
//! server's tracing work, not the client's string formatting.
//!
//! Measurements interleave the two sides and keep the per-side minimum
//! across trials, so a background scheduler blip cannot charge its noise
//! to one side. The acceptance budget is <3% overhead at batch 256.
//!
//! Run: `cargo run --release -p lam-bench --bin trace`

use lam_obs::trace::TraceContext;
use lam_serve::http::{self, PredictRequest, ServerOptions};
use lam_serve::loadgen::HttpClient;
use lam_serve::persist::ModelKind;
use lam_serve::registry::{ModelKey, ModelRegistry};
use lam_serve::workload::WorkloadId;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

const BATCHES: [usize; 3] = [1, 64, 256];
const TRIALS: usize = 25;
const BLOCK_ITERS: usize = 60;
const HEADER_POOL: usize = 1024;

/// Overhead at one batch size, ns/row through the warm-cache HTTP path.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct OverheadCell {
    batch: usize,
    traced_ns_per_row: f64,
    untraced_ns_per_row: f64,
    overhead_pct: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct TraceReport {
    workload: String,
    kind: String,
    cells: Vec<OverheadCell>,
    sample_every: u64,
    spans_recorded: u64,
    spans_sampled_out: u64,
    budget_pct: f64,
    within_budget: bool,
}

/// Compare two round-trip closures on a noisy machine: time every
/// round trip individually, interleaving [`TRIALS`] blocks of
/// [`BLOCK_ITERS`] per side, and keep each side's single-round-trip
/// minimum. Scheduler noise and queueing only ever *add* latency, so
/// each minimum is a tight floor; the floors differ by exactly the code
/// the traced side always executes — the overhead being measured.
fn min_ns_pair(mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    for _ in 0..BLOCK_ITERS {
        a();
        b();
    }
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    for _ in 0..TRIALS {
        for _ in 0..BLOCK_ITERS {
            let start = Instant::now();
            a();
            best_a = best_a.min(start.elapsed().as_nanos() as f64);
        }
        for _ in 0..BLOCK_ITERS {
            let start = Instant::now();
            b();
            best_b = best_b.min(start.elapsed().as_nanos() as f64);
        }
    }
    (best_a, best_b)
}

fn main() {
    let workload = WorkloadId::get("fmm-small").expect("builtin workload");
    let kind = ModelKind::Hybrid;
    let root = std::env::temp_dir().join("lam_bench_trace_models");
    let registry = Arc::new(ModelRegistry::new(root));
    registry
        .get(ModelKey::new(workload, kind, 1))
        .expect("train or load");
    let server = http::start(
        registry,
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServerOptions::default()
        },
    )
    .expect("server binds");
    let addr = server.local_addr().to_string();

    // Distinct bulk (unforced) trace ids, pre-formatted: the traced side
    // exercises the real per-request mix of sampled-in and sampled-out
    // traces at the default rate.
    let headers: Vec<String> = (0..HEADER_POOL)
        .map(|_| TraceContext::root().header_value())
        .collect();

    println!("tracing overhead: warm-cache HTTP /predict, {workload}/{kind}\n");
    println!(
        "  {:>6} | {:>12} {:>14} {:>9}",
        "batch", "traced/row", "untraced/row", "overhead"
    );
    println!("  {}", "-".repeat(48));

    // One keep-alive connection per side: the interleaved closures both
    // need exclusive use of theirs, and symmetric connections keep the
    // comparison fair.
    let mut traced_client = HttpClient::connect(&addr).expect("bench connection");
    let mut untraced_client = HttpClient::connect(&addr).expect("bench connection");
    let mut cells = Vec::new();
    for batch in BATCHES {
        let rows = workload.sample_rows(batch);
        let body = serde_json::to_string(&PredictRequest {
            workload: workload.to_string(),
            kind: kind.to_string(),
            version: Some(1),
            rows,
        })
        .expect("request serializes");
        // Warm the prediction cache and both connections.
        let (status, resp) = traced_client.post("/predict", &body).expect("warm predict");
        assert_eq!(status, 200, "warm predict failed: {resp}");
        let (status, _) = untraced_client
            .post("/predict", &body)
            .expect("warm predict");
        assert_eq!(status, 200);
        let mut next = 0usize;
        let (traced, untraced) = min_ns_pair(
            || {
                lam_obs::set_enabled(true);
                let header = &headers[next % HEADER_POOL];
                next += 1;
                traced_client
                    .send_traced("POST", "/predict", &body, Some(header))
                    .expect("send");
                let (status, _) = traced_client.recv().expect("recv");
                assert_eq!(status, 200);
            },
            || {
                lam_obs::set_enabled(false);
                let (status, _) = untraced_client.post("/predict", &body).expect("predict");
                assert_eq!(status, 200);
            },
        );
        lam_obs::set_enabled(true);
        let traced_row = traced / batch as f64;
        let untraced_row = untraced / batch as f64;
        let overhead_pct = 100.0 * (traced_row - untraced_row) / untraced_row;
        println!(
            "  {batch:>6} | {traced_row:>9.1} ns {untraced_row:>11.1} ns {overhead_pct:>8.2}%"
        );
        cells.push(OverheadCell {
            batch,
            traced_ns_per_row: traced_row,
            untraced_ns_per_row: untraced_row,
            overhead_pct,
        });
    }
    server.stop();

    let (spans_recorded, spans_sampled_out, _) = lam_obs::recorder::global().stats();
    let budget_pct = 3.0;
    let within_budget = cells
        .iter()
        .find(|c| c.batch == 256)
        .is_some_and(|c| c.overhead_pct < budget_pct);
    println!(
        "\nspans recorded: {spans_recorded}, sampled out: {spans_sampled_out} (1 in {} kept)",
        lam_obs::recorder::global().sample_every()
    );
    println!(
        "batch-256 overhead within {budget_pct}% budget: {}",
        if within_budget { "yes" } else { "NO" }
    );

    let report = TraceReport {
        workload: workload.to_string(),
        kind: kind.to_string(),
        cells,
        sample_every: lam_obs::recorder::global().sample_every(),
        spans_recorded,
        spans_sampled_out,
        budget_pct,
        within_budget,
    };
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("results dir");
    let path = dir.join("BENCH_trace.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("write report");
    println!("wrote {}", path.display());
    if !within_budget {
        std::process::exit(1);
    }
}
