//! Figure 5: stencil with *different grid sizes only* — the regime the
//! analytical model covers accurately. Pure Extra Trees at training windows
//! {10, 15, 20}% vs the hybrid model at {1, 2, 4}%.
//!
//! Paper shape: the hybrid reaches MAPE ≲ 10% with 1–4% of the data; pure
//! ML needs 10–20% for the same accuracy. Aggregation is enabled (the AM
//! is representative here).
//!
//! Run: `cargo run -p lam-bench --release --bin fig5`

use lam_analytical::stencil::StencilAnalyticalModel;
use lam_bench::report::{print_series, FigureReport, NamedSeries};
use lam_bench::runners::{defaults, stencil_dataset, StandardModels};
use lam_core::evaluate::{analytical_mape, evaluate_model, EvaluationConfig};
use lam_core::hybrid::HybridConfig;
use lam_machine::arch::MachineDescription;
use lam_stencil::config::space_grid_only;

fn main() {
    let data = stencil_dataset(&space_grid_only());
    let machine = MachineDescription::blue_waters_xe6();
    println!("Fig 5 — stencil, grid sizes only ({} configs)", data.len());

    let am = StencilAnalyticalModel::new(machine.clone(), defaults::STENCIL_TIMESTEPS);
    let am_mape = analytical_mape(&data, &am);

    let et_cfg = EvaluationConfig::new(vec![0.10, 0.15, 0.20], defaults::TRIALS, 51);
    let et = evaluate_model(&data, &et_cfg, StandardModels::extra_trees);
    print_series("Extra Trees (10/15/20% training)", &et);

    let hy_cfg = EvaluationConfig::new(vec![0.01, 0.02, 0.04], defaults::TRIALS, 52);
    let machine2 = machine.clone();
    let hybrid = evaluate_model(&data, &hy_cfg, move |seed| {
        StandardModels::hybrid(
            Box::new(StencilAnalyticalModel::new(
                machine2.clone(),
                defaults::STENCIL_TIMESTEPS,
            )),
            HybridConfig::with_aggregation(),
            seed,
        )
    });
    print_series("Hybrid (1/2/4% training)", &hybrid);
    println!("\n  analytical model alone: MAPE {am_mape:.1}%");

    let report = FigureReport {
        figure: "fig5".into(),
        title: "ET vs Hybrid, stencil grid-only".into(),
        dataset_rows: data.len(),
        series: vec![
            NamedSeries {
                label: "Extra Trees".into(),
                points: et,
            },
            NamedSeries {
                label: "Hybrid".into(),
                points: hybrid,
            },
        ],
        notes: vec![("am_mape".into(), am_mape)],
    };
    let path = report.save().expect("write results");
    println!("saved {}", path.display());
}
