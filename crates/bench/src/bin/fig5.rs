//! Figure 5: stencil with *different grid sizes only* — the regime the
//! analytical model covers accurately. Pure Extra Trees at training windows
//! {10, 15, 20}% vs the hybrid model at {1, 2, 4}%.
//!
//! Paper shape: the hybrid reaches MAPE ≲ 10% with 1–4% of the data; pure
//! ML needs 10–20% for the same accuracy. Aggregation is enabled (the AM
//! is representative here).
//!
//! Run: `cargo run -p lam-bench --release --bin fig5`

use lam_bench::runners::{blue_waters_stencil, run_et_vs_hybrid, EtVsHybridSpec};
use lam_core::hybrid::HybridConfig;
use lam_stencil::config::space_grid_only;

fn main() {
    let workload = blue_waters_stencil(space_grid_only());
    let report = run_et_vs_hybrid(
        &workload,
        EtVsHybridSpec {
            figure: "fig5".into(),
            title: "Fig 5 — stencil, grid sizes only".into(),
            et_fractions: vec![0.10, 0.15, 0.20],
            hybrid_fractions: vec![0.01, 0.02, 0.04],
            hybrid_config: HybridConfig::with_aggregation(),
            et_label: "Extra Trees (10/15/20% training)".into(),
            hybrid_label: "Hybrid (1/2/4% training)".into(),
            et_seed: 51,
            hybrid_seed: 52,
        },
    );
    let path = report.save().expect("write results");
    println!("saved {}", path.display());
}
