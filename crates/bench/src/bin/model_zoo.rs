//! Extension experiment: the full model zoo on both applications.
//!
//! Beyond the paper's three tree families, this compares every regressor
//! in `lam-ml` (mean, linear/ridge, k-NN, single tree, random forest,
//! extra trees, gradient boosting) and the hybrid, at one representative
//! training window per application — a quick map of where each model
//! family lands.
//!
//! Run: `cargo run -p lam-bench --release --bin model_zoo`

use lam_analytical::fmm::FmmAnalyticalModel;
use lam_analytical::stencil::BlockedStencilModel;
use lam_bench::report::{print_series, FigureReport, NamedSeries};
use lam_bench::runners::{defaults, fmm_dataset, stencil_dataset, StandardModels};
use lam_core::evaluate::{evaluate_model, EvaluationConfig};
use lam_core::hybrid::{HybridConfig, HybridModel};
use lam_data::Dataset;
use lam_machine::arch::MachineDescription;
use lam_ml::ensemble::GradientBoostingRegressor;
use lam_ml::knn::KnnRegressor;
use lam_ml::linear::LinearRegressor;
use lam_ml::model::{MeanRegressor, Regressor};

type Factory = Box<dyn Fn(u64) -> Box<dyn Regressor>>;

fn zoo(stencil: bool) -> Vec<(&'static str, Factory)> {
    let machine = MachineDescription::blue_waters_xe6();
    let mut out: Vec<(&'static str, Factory)> = vec![
        ("mean", Box::new(|_| Box::new(MeanRegressor::new()))),
        (
            "ridge",
            Box::new(|_| Box::new(LinearRegressor::new(1e-6))),
        ),
        ("knn-5", Box::new(|_| Box::new(KnnRegressor::new(5).weighted()))),
        ("decision tree", Box::new(StandardModels::decision_tree)),
        ("random forest", Box::new(StandardModels::random_forest)),
        ("extra trees", Box::new(StandardModels::extra_trees)),
        (
            "gradient boosting",
            Box::new(|seed| Box::new(GradientBoostingRegressor::new(300, 0.1, seed))),
        ),
    ];
    if stencil {
        let m = machine.clone();
        out.push((
            "hybrid (ET + AM)",
            Box::new(move |seed| {
                Box::new(HybridModel::new(
                    Box::new(BlockedStencilModel::new(
                        m.clone(),
                        defaults::STENCIL_TIMESTEPS,
                    )),
                    StandardModels::extra_trees(seed),
                    HybridConfig::default(),
                ))
            }),
        ));
    } else {
        let m = machine;
        out.push((
            "hybrid (ET + AM)",
            Box::new(move |seed| {
                Box::new(HybridModel::new(
                    Box::new(FmmAnalyticalModel::new(m.clone())),
                    StandardModels::extra_trees(seed),
                    HybridConfig {
                        log_feature: true,
                        ..HybridConfig::default()
                    },
                ))
            }),
        ));
    }
    out
}

fn run(data: &Dataset, fraction: f64, seed: u64, stencil: bool, series: &mut Vec<NamedSeries>) {
    let cfg = EvaluationConfig::new(vec![fraction], defaults::TRIALS, seed);
    for (label, factory) in zoo(stencil) {
        let points = evaluate_model(data, &cfg, |s| factory(s));
        print_series(label, &points);
        series.push(NamedSeries {
            label: label.to_string(),
            points,
        });
    }
}

fn main() {
    let mut series = Vec::new();

    let data = stencil_dataset(&lam_stencil::config::space_grid_blocking());
    println!(
        "=== model zoo: stencil grid+blocking @ 4% training ({} rows) ===",
        data.len()
    );
    run(&data, 0.04, 101, true, &mut series);

    let data = fmm_dataset(&lam_fmm::config::space_paper());
    println!("\n=== model zoo: FMM @ 20% training ({} rows) ===", data.len());
    run(&data, 0.20, 102, false, &mut series);

    let report = FigureReport {
        figure: "model_zoo".into(),
        title: "all model families on both applications".into(),
        dataset_rows: data.len(),
        series,
        notes: vec![],
    };
    let path = report.save().expect("write results");
    println!("\nsaved {}", path.display());
}
