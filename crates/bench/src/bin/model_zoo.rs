//! Extension experiment: the full model zoo on both applications.
//!
//! Beyond the paper's three tree families, this compares every regressor
//! in `lam-ml` (mean, linear/ridge, k-NN, single tree, random forest,
//! extra trees, gradient boosting) and the hybrid, at one representative
//! training window per application — a quick map of where each model
//! family lands. Generic over [`Workload`]: the hybrid entry stacks each
//! scenario's own analytical model, so adding a scenario adds a panel
//! without new code here.
//!
//! Run: `cargo run -p lam-bench --release --bin model_zoo`

use lam_bench::report::{print_series, FigureReport, NamedSeries};
use lam_bench::runners::{blue_waters_fmm, blue_waters_stencil, defaults, StandardModels};
use lam_core::evaluate::{evaluate_model, EvaluationConfig};
use lam_core::hybrid::HybridConfig;
use lam_core::workload::Workload;
use lam_ml::ensemble::GradientBoostingRegressor;
use lam_ml::knn::KnnRegressor;
use lam_ml::linear::LinearRegressor;
use lam_ml::model::{MeanRegressor, Regressor};

type Factory<'a> = Box<dyn Fn(u64) -> Box<dyn Regressor> + Sync + 'a>;

/// All model families, ending with the hybrid built from the workload's
/// own analytical model.
fn zoo<'a, W: Workload>(
    workload: &'a W,
    hybrid_config: HybridConfig,
) -> Vec<(&'static str, Factory<'a>)> {
    vec![
        ("mean", Box::new(|_| Box::new(MeanRegressor::new()))),
        ("ridge", Box::new(|_| Box::new(LinearRegressor::new(1e-6)))),
        (
            "knn-5",
            Box::new(|_| Box::new(KnnRegressor::new(5).weighted())),
        ),
        ("decision tree", Box::new(StandardModels::decision_tree)),
        ("random forest", Box::new(StandardModels::random_forest)),
        ("extra trees", Box::new(StandardModels::extra_trees)),
        (
            "gradient boosting",
            Box::new(|seed| Box::new(GradientBoostingRegressor::new(300, 0.1, seed))),
        ),
        (
            "hybrid (ET + AM)",
            Box::new(move |seed| StandardModels::hybrid_for(workload, hybrid_config, seed)),
        ),
    ]
}

fn run<W: Workload>(
    workload: &W,
    hybrid_config: HybridConfig,
    fraction: f64,
    seed: u64,
    series: &mut Vec<NamedSeries>,
) -> usize {
    let data = workload.generate_dataset();
    println!(
        "=== model zoo: {} @ {:.0}% training ({} rows) ===",
        workload.name(),
        fraction * 100.0,
        data.len()
    );
    let cfg = EvaluationConfig::new(vec![fraction], defaults::TRIALS, seed);
    for (label, factory) in zoo(workload, hybrid_config) {
        let points = evaluate_model(&data, &cfg, |s| factory(s));
        print_series(&format!("{}: {label}", workload.name()), &points);
        series.push(NamedSeries {
            label: format!("{}: {label}", workload.name()),
            points,
        });
    }
    data.len()
}

fn main() {
    let mut series = Vec::new();
    let mut notes = Vec::new();

    let stencil = blue_waters_stencil(lam_stencil::config::space_grid_blocking());
    let stencil_rows = run(&stencil, HybridConfig::default(), 0.04, 101, &mut series);
    notes.push(("stencil_dataset_rows".to_string(), stencil_rows as f64));

    println!();
    let fmm = blue_waters_fmm(lam_fmm::config::space_paper());
    let fmm_rows = run(
        &fmm,
        HybridConfig {
            log_feature: true,
            ..HybridConfig::default()
        },
        0.20,
        102,
        &mut series,
    );
    notes.push(("fmm_dataset_rows".to_string(), fmm_rows as f64));

    let report = FigureReport {
        figure: "model_zoo".into(),
        title: "all model families on both applications".into(),
        // Two panels, two datasets; per-panel row counts are in `notes`.
        dataset_rows: stencil_rows + fmm_rows,
        series,
        notes,
    };
    let path = report.save().expect("write results");
    println!("\nsaved {}", path.display());
}
