//! Extension experiment: the full model zoo on both applications.
//!
//! Beyond the paper's three tree families, this compares every regressor
//! in `lam-ml` (mean, linear/ridge, k-NN, single tree, random forest,
//! extra trees, gradient boosting) and the hybrid, at one representative
//! training window per application — a quick map of where each model
//! family lands. Scenarios are resolved by name from the workload
//! catalog: the hybrid entry stacks each scenario's own analytical model
//! with its own hybrid configuration, so adding a scenario adds a panel
//! without new code here.
//!
//! Run: `cargo run -p lam-bench --release --bin model_zoo`

use lam_bench::report::{print_series, FigureReport, NamedSeries};
use lam_bench::runners::{defaults, servable, StandardModels};
use lam_core::catalog::{DynWorkload, WorkloadEntry};
use lam_core::evaluate::{evaluate_model, EvaluationConfig};
use lam_core::hybrid::HybridConfig;
use lam_ml::ensemble::GradientBoostingRegressor;
use lam_ml::knn::KnnRegressor;
use lam_ml::linear::LinearRegressor;
use lam_ml::model::{MeanRegressor, Regressor};

type Factory<'a> = Box<dyn Fn(u64) -> Box<dyn Regressor> + Sync + 'a>;

/// All model families, ending with the hybrid built from the workload's
/// own analytical model.
fn zoo<'a>(
    workload: &'a dyn DynWorkload,
    hybrid_config: HybridConfig,
) -> Vec<(&'static str, Factory<'a>)> {
    vec![
        ("mean", Box::new(|_| Box::new(MeanRegressor::new()))),
        ("ridge", Box::new(|_| Box::new(LinearRegressor::new(1e-6)))),
        (
            "knn-5",
            Box::new(|_| Box::new(KnnRegressor::new(5).weighted())),
        ),
        ("decision tree", Box::new(StandardModels::decision_tree)),
        ("random forest", Box::new(StandardModels::random_forest)),
        ("extra trees", Box::new(StandardModels::extra_trees)),
        (
            "gradient boosting",
            Box::new(|seed| Box::new(GradientBoostingRegressor::new(300, 0.1, seed))),
        ),
        (
            "hybrid (ET + AM)",
            Box::new(move |seed| StandardModels::hybrid_for(workload, hybrid_config, seed)),
        ),
    ]
}

fn run(entry: &WorkloadEntry, fraction: f64, seed: u64, series: &mut Vec<NamedSeries>) -> usize {
    let workload = entry.workload();
    // Memoized in the catalog entry: repeated panels over one scenario
    // pay a single oracle sweep.
    let data = entry.dataset();
    println!(
        "=== model zoo: {} @ {:.0}% training ({} rows) ===",
        entry.name(),
        fraction * 100.0,
        data.len()
    );
    let cfg = EvaluationConfig::new(vec![fraction], defaults::TRIALS, seed);
    // The scenario supplies its own hybrid configuration (FMM stacks
    // ln(am); the stencil stacks the raw prediction).
    for (label, factory) in zoo(workload, workload.hybrid_config()) {
        let points = evaluate_model(&data, &cfg, |s| factory(s));
        print_series(&format!("{}: {label}", entry.name()), &points);
        series.push(NamedSeries {
            label: format!("{}: {label}", entry.name()),
            points,
        });
    }
    data.len()
}

fn main() {
    let mut series = Vec::new();
    let mut notes = Vec::new();

    let stencil = servable("stencil-grid-blocking").expect("builtin workload");
    let stencil_rows = run(&stencil, 0.04, 101, &mut series);
    notes.push(("stencil_dataset_rows".to_string(), stencil_rows as f64));

    println!();
    let fmm = servable("fmm").expect("builtin workload");
    let fmm_rows = run(&fmm, 0.20, 102, &mut series);
    notes.push(("fmm_dataset_rows".to_string(), fmm_rows as f64));

    let report = FigureReport {
        figure: "model_zoo".into(),
        title: "all model families on both applications".into(),
        // Two panels, two datasets; per-panel row counts are in `notes`.
        dataset_rows: stencil_rows + fmm_rows,
        series,
        notes,
    };
    let path = report.save().expect("write results");
    println!("\nsaved {}", path.display());
}
