//! Inference fast-path report: arena-compiled vs interpreted per-row
//! latency (batch 1 / 64 / 256, every tree-backed family) and binary vs
//! JSON artifact load time, written to `results/BENCH_infer.json`.
//!
//! The Criterion twin (`cargo bench -p lam-bench --bench infer`) gives
//! statistically rigorous numbers; this binary is the quick, CI-friendly
//! record: one adaptive wall-clock measurement per cell, a printed table,
//! and a JSON artifact checked into the repo so the README can cite
//! exact figures.
//!
//! Run: `cargo run --release -p lam-bench --bin infer`

use lam_serve::persist::{ModelKind, SavedModel};
use lam_serve::registry::{train, ModelKey};
use lam_serve::workload::WorkloadId;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

const BATCHES: [usize; 3] = [1, 64, 256];
const TREE_KINDS: [ModelKind; 4] = [
    ModelKind::Cart,
    ModelKind::RandomForest,
    ModelKind::ExtraTrees,
    ModelKind::Boosting,
];

/// One (kind, batch) cell: ns/row through each evaluation path.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BatchCell {
    kind: String,
    batch: usize,
    interpreted_ns_per_row: f64,
    compiled_ns_per_row: f64,
    speedup: f64,
}

/// Artifact cold-start timing per format, microseconds per load.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LoadCell {
    format: String,
    micros_per_load: f64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct InferReport {
    workload: String,
    cells: Vec<BatchCell>,
    loads: Vec<LoadCell>,
    load_speedup_binary_over_json: f64,
}

/// Wall-clock a closure: warm up, then run enough iterations to fill a
/// ~40ms window and return mean ns per call.
fn time_ns(mut f: impl FnMut()) -> f64 {
    for _ in 0..3 {
        f();
    }
    let probe = Instant::now();
    f();
    let per_iter = probe.elapsed().as_nanos().max(1);
    let iters = (40_000_000 / per_iter).clamp(1, 1_000_000) as u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / f64::from(iters)
}

fn main() {
    let workload = WorkloadId::get("fmm-small").expect("builtin workload");
    let mut cells = Vec::new();

    println!("inference: arena-compiled vs interpreted ({workload})\n");
    println!(
        "  {:>14} {:>6} | {:>16} {:>14} {:>8}",
        "kind", "batch", "interpreted/row", "compiled/row", "speedup"
    );
    println!("  {}", "-".repeat(66));
    for kind in TREE_KINDS {
        let saved = train(ModelKey::new(workload, kind, 1)).expect("training succeeds");
        let interpreted = saved.clone().into_interpreted_predictor();
        let compiled = saved.into_predictor().expect("compiles");
        for batch in BATCHES {
            let rows = workload.sample_rows(batch);
            let a = time_ns(|| {
                std::hint::black_box(interpreted.predict_rows(std::hint::black_box(&rows)));
            }) / batch as f64;
            let b = time_ns(|| {
                std::hint::black_box(compiled.predict_rows(std::hint::black_box(&rows)));
            }) / batch as f64;
            let speedup = a / b;
            println!(
                "  {:>14} {:>6} | {:>13.1} ns {:>11.1} ns {:>7.1}x",
                kind.name(),
                batch,
                a,
                b,
                speedup
            );
            cells.push(BatchCell {
                kind: kind.name().to_string(),
                batch,
                interpreted_ns_per_row: a,
                compiled_ns_per_row: b,
                speedup,
            });
        }
    }

    // Cold start: extra trees is the largest artifact and the paper's
    // best pure-ML model.
    let dir = std::env::temp_dir().join("lam_bench_infer_bin_load");
    let saved = train(ModelKey::new(workload, ModelKind::ExtraTrees, 1)).expect("training");
    let bin_path = saved.save(&dir).expect("binary save");
    let json_path = saved.save_json(&dir).expect("json save");
    let bin_us = time_ns(|| {
        std::hint::black_box(SavedModel::load(&bin_path).expect("loads"));
    }) / 1000.0;
    let json_us = time_ns(|| {
        std::hint::black_box(SavedModel::load(&json_path).expect("loads"));
    }) / 1000.0;
    let load_speedup = json_us / bin_us;
    println!("\nartifact load (extra-trees):");
    println!("  binary: {bin_us:>10.1} us");
    println!("  json:   {json_us:>10.1} us");
    println!("  speedup: {load_speedup:.1}x");

    let report = InferReport {
        workload: workload.to_string(),
        cells,
        loads: vec![
            LoadCell {
                format: "binary".to_string(),
                micros_per_load: bin_us,
            },
            LoadCell {
                format: "json".to_string(),
                micros_per_load: json_us,
            },
        ],
        load_speedup_binary_over_json: load_speedup,
    };
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("results dir");
    let path = dir.join("BENCH_infer.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&report).expect("serializable"),
    )
    .expect("write report");
    println!("\nwrote {}", path.display());
}
