//! Validate the §IV analytical cache-miss model against trace-driven LRU
//! simulation: replay the exact address stream of small stencil sweeps
//! through the simulated XE6 cache hierarchy and compare last-level miss
//! counts with the closed-form `Misses_Li` of eq 7 / eq 15.
//!
//! This is the experiment behind the claim that the analytical model
//! "roughly captures" the application: the closed form should be within a
//! small factor of the simulated truth and move in the same direction
//! across blockings.
//!
//! Run: `cargo run -p lam-bench --release --bin cache_model_validation`

use lam_machine::arch::MachineDescription;
use lam_stencil::config::StencilConfig;
use lam_stencil::trace::trace_sweep;

/// Closed-form miss estimate of the paper's model for the last cache
/// level, in cache lines (eq 7/15 with the blocked reassignment).
fn analytical_llc_misses(cfg: &StencilConfig, machine: &MachineDescription) -> f64 {
    let w = machine.elements_per_line() as f64;
    let l = 1.0; // stencil order
    let (ti, tj, tk) = (cfg.bi as f64, cfg.bj as f64, cfg.bk as f64);
    let ii = ((ti + 2.0 * l) / w).ceil() * w;
    let jj = tj + 2.0 * l;
    let kk = tk + 2.0 * l;
    let s_read = ii * jj;
    let s_total = 3.0 * s_read + ti * tj;
    let nb = (cfg.i as f64 / ti).ceil() * (cfg.j as f64 / tj).ceil() * (cfg.k as f64 / tk).ceil();
    let level = machine.caches.last().expect("cache hierarchy");
    let cap_lines = level.size_bytes as f64 / level.line_bytes as f64;
    let np = lam_analytical::stencil::nplanes(cap_lines, s_total, s_read, ii, 1);
    (ii / w).ceil() * jj * kk * np * nb
}

fn main() {
    let machine = MachineDescription::blue_waters_xe6();
    println!("trace-driven validation of the analytical miss model (LLC)");
    println!(
        "{:>24} | {:>12} {:>12} {:>8}",
        "configuration", "simulated", "analytical", "ratio"
    );
    println!("{}", "-".repeat(64));

    let cases = [
        ("32^3 unblocked", StencilConfig::unblocked(32, 32, 32)),
        ("48^3 unblocked", StencilConfig::unblocked(48, 48, 48)),
        ("1x96x96 unblocked", StencilConfig::unblocked(1, 96, 96)),
        (
            "1x96x96 blocks 32x32",
            StencilConfig {
                bj: 32,
                bk: 32,
                ..StencilConfig::unblocked(1, 96, 96)
            },
        ),
        (
            "1x96x96 blocks 8x8",
            StencilConfig {
                bj: 8,
                bk: 8,
                ..StencilConfig::unblocked(1, 96, 96)
            },
        ),
        (
            "48^3 blocks 16^3",
            StencilConfig {
                bi: 16,
                bj: 16,
                bk: 16,
                ..StencilConfig::unblocked(48, 48, 48)
            },
        ),
    ];

    let mut ratios = Vec::new();
    for (label, cfg) in &cases {
        let traced = trace_sweep(cfg, &machine);
        let analytical = analytical_llc_misses(cfg, &machine);
        let ratio = analytical / traced.llc_misses() as f64;
        ratios.push(ratio);
        println!(
            "{label:>24} | {:>12} {:>12.0} {:>8.2}",
            traced.llc_misses(),
            analytical,
            ratio
        );
    }

    let gm = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    println!("\ngeometric-mean analytical/simulated ratio: {gm:.2}");
    println!("(the §VII narrative needs 'roughly captures', not exactness)");
    assert!(
        ratios.iter().all(|&r| r > 0.2 && r < 25.0),
        "analytical model left the 'rough capture' band: {ratios:?}"
    );
}
