//! Figure 3A: MAPE of Decision Trees / Extra Trees / Random Forests vs
//! training-set size on the stencil grid+blocking dataset,
//! `X = (I, J, K, bi, bj, bk)`, training windows {1, 2, 4, 6, 10}%.
//!
//! Paper shape: MAPE falls and tightens as the window grows; all models are
//! poor at 1–2% (20–100%), and Extra Trees is the best performer.
//!
//! Run: `cargo run -p lam-bench --release --bin fig3_stencil`

use lam_bench::report::{print_series, FigureReport, NamedSeries};
use lam_bench::runners::{defaults, stencil_dataset, StandardModels};
use lam_core::evaluate::{evaluate_model, EvaluationConfig};
use lam_stencil::config::space_grid_blocking;

fn main() {
    let data = stencil_dataset(&space_grid_blocking());
    println!(
        "Fig 3A — pure-ML models on stencil grid+blocking ({} configs)",
        data.len()
    );
    let config = EvaluationConfig::new(
        vec![0.01, 0.02, 0.04, 0.06, 0.10],
        defaults::TRIALS,
        31,
    );
    let mut series = Vec::new();
    for (label, factory) in [
        (
            "Decision Trees",
            StandardModels::decision_tree as fn(u64) -> _,
        ),
        ("Extra Trees", StandardModels::extra_trees as fn(u64) -> _),
        (
            "Random Forests",
            StandardModels::random_forest as fn(u64) -> _,
        ),
    ] {
        let points = evaluate_model(&data, &config, factory);
        print_series(label, &points);
        series.push(NamedSeries {
            label: label.to_string(),
            points,
        });
    }
    let report = FigureReport {
        figure: "fig3_stencil".into(),
        title: "MAPE of ML models vs training size, stencil grid+blocking".into(),
        dataset_rows: data.len(),
        series,
        notes: vec![],
    };
    let path = report.save().expect("write results");
    println!("\nsaved {}", path.display());
}
