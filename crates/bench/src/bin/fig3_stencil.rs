//! Figure 3A: MAPE of Decision Trees / Extra Trees / Random Forests vs
//! training-set size on the stencil grid+blocking dataset,
//! `X = (I, J, K, bi, bj, bk)`, training windows {1, 2, 4, 6, 10}%.
//!
//! Paper shape: MAPE falls and tightens as the window grows; all models are
//! poor at 1–2% (20–100%), and Extra Trees is the best performer.
//!
//! Run: `cargo run -p lam-bench --release --bin fig3_stencil`

use lam_bench::runners::{blue_waters_stencil, run_pure_ml_panel};
use lam_stencil::config::space_grid_blocking;

fn main() {
    let workload = blue_waters_stencil(space_grid_blocking());
    let report = run_pure_ml_panel(
        &workload,
        "fig3_stencil",
        "Fig 3A — pure-ML models on stencil grid+blocking",
        vec![0.01, 0.02, 0.04, 0.06, 0.10],
        31,
    );
    let path = report.save().expect("write results");
    println!("\nsaved {}", path.display());
}
