//! Figure-report formatting and JSON persistence.

use lam_core::evaluate::SeriesPoint;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A named MAPE-vs-training-window series (one panel line of a figure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NamedSeries {
    /// Legend label, e.g. "Extra Trees" or "Hybrid".
    pub label: String,
    /// The per-window-size score distributions.
    pub points: Vec<SeriesPoint>,
}

/// Everything one figure binary produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureReport {
    /// Figure id, e.g. "fig5".
    pub figure: String,
    /// Human description.
    pub title: String,
    /// Dataset size used.
    pub dataset_rows: usize,
    /// The series (one per model family/panel).
    pub series: Vec<NamedSeries>,
    /// Optional extra scalars (e.g. analytical-model MAPE).
    pub notes: Vec<(String, f64)>,
}

impl FigureReport {
    /// Write the report as pretty JSON under `results/`.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        let dir = Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.figure));
        std::fs::write(
            &path,
            serde_json::to_string_pretty(self).expect("serializable"),
        )?;
        Ok(path)
    }
}

/// Print a series as an aligned text table (the stdout analogue of the
/// paper's box plots: mean, quartiles, extremes per window size).
pub fn print_series(label: &str, points: &[SeriesPoint]) {
    println!("\n  {label}");
    println!(
        "    {:>9} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "train", "mean", "q1", "median", "q3", "max"
    );
    println!("    {}", "-".repeat(58));
    for p in points {
        let s = &p.summary;
        println!(
            "    {:>8.1}% | {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            p.fraction * 100.0,
            s.mean,
            s.q1,
            s.median,
            s.q3,
            s.max
        );
    }
}

/// Print a compact paper-vs-measured comparison line.
pub fn print_note(name: &str, value: f64) {
    println!("  {name}: {value:.2}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use lam_data::Summary;

    fn point(fraction: f64) -> SeriesPoint {
        let scores = vec![10.0, 12.0, 14.0];
        SeriesPoint {
            fraction,
            summary: Summary::of(&scores).unwrap(),
            scores,
        }
    }

    #[test]
    fn report_serializes() {
        let r = FigureReport {
            figure: "figX".into(),
            title: "test".into(),
            dataset_rows: 100,
            series: vec![NamedSeries {
                label: "et".into(),
                points: vec![point(0.1)],
            }],
            notes: vec![("am_mape".into(), 42.0)],
        };
        let s = serde_json::to_string(&r).unwrap();
        let back: FigureReport = serde_json::from_str(&s).unwrap();
        assert_eq!(back.figure, "figX");
        assert_eq!(back.series[0].points[0].scores.len(), 3);
    }

    #[test]
    fn printing_does_not_panic() {
        print_series("demo", &[point(0.01), point(0.02)]);
        print_note("x", 1.5);
    }
}
