//! Shared experiment plumbing: dataset construction on the simulated Blue
//! Waters node and the standard model factories the figures compare.

use lam_core::hybrid::{HybridConfig, HybridModel};
use lam_data::Dataset;
use lam_fmm::config::FmmSpace;
use lam_machine::arch::MachineDescription;
use lam_ml::forest::{ExtraTreesRegressor, RandomForestRegressor};
use lam_ml::model::Regressor;
use lam_ml::tree::{DecisionTreeRegressor, TreeParams};
use lam_stencil::config::StencilSpace;

/// Workspace-wide experiment constants.
pub mod defaults {
    /// Timesteps per modeled stencil run (oracle and analytical model must
    /// agree).
    pub const STENCIL_TIMESTEPS: usize = 4;
    /// Noise seed for dataset generation (fixed → reproducible datasets).
    pub const NOISE_SEED: u64 = 20190520;
    /// Trees per forest in the figure experiments.
    pub const N_TREES: usize = 100;
    /// Resampling trials per training-window size.
    pub const TRIALS: usize = 15;
}

/// Generate a stencil dataset on the Blue Waters description.
pub fn stencil_dataset(space: &StencilSpace) -> Dataset {
    let machine = MachineDescription::blue_waters_xe6();
    lam_stencil::oracle::StencilOracle::new(machine, defaults::NOISE_SEED)
        .generate_dataset(space)
}

/// Generate the FMM dataset on the Blue Waters description.
pub fn fmm_dataset(space: &FmmSpace) -> Dataset {
    let machine = MachineDescription::blue_waters_xe6();
    lam_fmm::oracle::FmmOracle::new(machine, defaults::NOISE_SEED).generate_dataset(space)
}

/// Factories for the model families the paper compares.
pub struct StandardModels;

impl StandardModels {
    /// Single CART tree (`DecisionTreeRegressor` in Fig 3).
    pub fn decision_tree(seed: u64) -> Box<dyn Regressor> {
        Box::new(DecisionTreeRegressor::new(TreeParams::default(), seed))
    }

    /// Extra-trees forest (the paper's best performer and hybrid base).
    pub fn extra_trees(seed: u64) -> Box<dyn Regressor> {
        Box::new(ExtraTreesRegressor::with_params(
            defaults::N_TREES,
            TreeParams::default(),
            seed,
        ))
    }

    /// Random forest.
    pub fn random_forest(seed: u64) -> Box<dyn Regressor> {
        Box::new(RandomForestRegressor::with_params(
            defaults::N_TREES,
            TreeParams::default(),
            seed,
        ))
    }

    /// Hybrid = analytical model stacked under extra trees.
    pub fn hybrid(
        am: Box<dyn lam_analytical::traits::AnalyticalModel>,
        config: HybridConfig,
        seed: u64,
    ) -> Box<dyn Regressor> {
        Box::new(HybridModel::new(am, Self::extra_trees(seed), config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lam_stencil::config::space_grid_only;

    #[test]
    fn dataset_builders_work() {
        let d = stencil_dataset(&space_grid_only());
        assert_eq!(d.len(), 729);
        let d = fmm_dataset(&lam_fmm::config::space_small());
        assert!(!d.is_empty());
    }

    #[test]
    fn factories_produce_named_models() {
        assert_eq!(StandardModels::decision_tree(0).name(), "decision_tree");
        assert_eq!(StandardModels::extra_trees(0).name(), "extra_trees");
        assert_eq!(StandardModels::random_forest(0).name(), "random_forest");
    }
}
