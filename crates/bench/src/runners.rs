//! Shared experiment plumbing over erased [`DynWorkload`]s: dataset
//! construction on the simulated Blue Waters node, catalog lookups for
//! the servable scenarios, the standard model factories the figures
//! compare, and the two figure-panel protocols (pure-ML comparison,
//! Extra Trees vs hybrid) every binary reuses.
//!
//! The panel protocols take `&dyn DynWorkload`, so they run equally on a
//! concrete workload value (`blue_waters_stencil(...)`) and on a catalog
//! entry resolved by name ([`servable`]) — including scenarios other
//! crates registered at runtime.

use crate::report::{print_series, FigureReport, NamedSeries};
use lam_core::catalog::{CatalogError, DynWorkload, WorkloadCatalog, WorkloadEntry};
use lam_core::evaluate::{analytical_mape, evaluate_model, EvaluationConfig};
use lam_core::hybrid::{HybridConfig, HybridModel};
use lam_data::Dataset;
use lam_fmm::config::FmmSpace;
use lam_fmm::workload::FmmWorkload;
use lam_machine::arch::MachineDescription;
use lam_ml::forest::{ExtraTreesRegressor, RandomForestRegressor};
use lam_ml::model::Regressor;
use lam_ml::tree::{DecisionTreeRegressor, TreeParams};
use lam_spmv::config::SpmvSpace;
use lam_spmv::workload::SpmvWorkload;
use lam_stencil::config::StencilSpace;
use lam_stencil::workload::StencilWorkload;
use std::sync::Arc;

/// Workspace-wide experiment constants.
pub mod defaults {
    /// Timesteps per modeled stencil run (oracle and analytical model must
    /// agree).
    pub const STENCIL_TIMESTEPS: usize = 4;
    /// Noise seed for dataset generation (fixed → reproducible datasets);
    /// the same seed the serving catalog pins, so figures and served
    /// models agree on the ground truth.
    pub const NOISE_SEED: u64 = lam_core::catalog::SERVE_NOISE_SEED;
    /// Trees per forest in the figure experiments.
    pub const N_TREES: usize = 100;
    /// Resampling trials per training-window size.
    pub const TRIALS: usize = 15;
}

/// Resolve a servable scenario by catalog name, registering the built-in
/// descriptors on first use. Figure binaries address scenarios by stable
/// name through this instead of hand-wiring space constructors, and the
/// returned entry's [`WorkloadEntry::dataset`] memo means repeated panels
/// over one scenario pay a single oracle sweep.
pub fn servable(name: &str) -> Result<Arc<WorkloadEntry>, CatalogError> {
    // One shared built-in list for the whole workspace: the serving
    // layer's lazy registration.
    lam_serve::workload::ensure_builtin_workloads();
    WorkloadCatalog::global().resolve(name)
}

/// A servable scenario's memoized dataset, by catalog name.
pub fn servable_dataset(name: &str) -> Result<Arc<Dataset>, CatalogError> {
    Ok(servable(name)?.dataset())
}

/// The stencil scenario on the Blue Waters description.
pub fn blue_waters_stencil(space: StencilSpace) -> StencilWorkload {
    StencilWorkload::new(
        MachineDescription::blue_waters_xe6(),
        space,
        defaults::NOISE_SEED,
    )
}

/// The FMM scenario on the Blue Waters description.
pub fn blue_waters_fmm(space: FmmSpace) -> FmmWorkload {
    FmmWorkload::new(
        MachineDescription::blue_waters_xe6(),
        space,
        defaults::NOISE_SEED,
    )
}

/// The SpMV scenario on the Blue Waters description.
pub fn blue_waters_spmv(space: SpmvSpace) -> SpmvWorkload {
    SpmvWorkload::new(
        MachineDescription::blue_waters_xe6(),
        space,
        defaults::NOISE_SEED,
    )
}

/// Generate a stencil dataset on the Blue Waters description.
pub fn stencil_dataset(space: &StencilSpace) -> Dataset {
    blue_waters_stencil(space.clone()).generate_dataset()
}

/// Generate the FMM dataset on the Blue Waters description.
pub fn fmm_dataset(space: &FmmSpace) -> Dataset {
    blue_waters_fmm(space.clone()).generate_dataset()
}

/// Generate an SpMV dataset on the Blue Waters description.
pub fn spmv_dataset(space: &SpmvSpace) -> Dataset {
    blue_waters_spmv(space.clone()).generate_dataset()
}

/// Factories for the model families the paper compares.
pub struct StandardModels;

impl StandardModels {
    /// Single CART tree (`DecisionTreeRegressor` in Fig 3).
    pub fn decision_tree(seed: u64) -> Box<dyn Regressor> {
        Box::new(DecisionTreeRegressor::new(TreeParams::default(), seed))
    }

    /// Extra-trees forest (the paper's best performer and hybrid base).
    pub fn extra_trees(seed: u64) -> Box<dyn Regressor> {
        Box::new(ExtraTreesRegressor::with_params(
            defaults::N_TREES,
            TreeParams::default(),
            seed,
        ))
    }

    /// Random forest.
    pub fn random_forest(seed: u64) -> Box<dyn Regressor> {
        Box::new(RandomForestRegressor::with_params(
            defaults::N_TREES,
            TreeParams::default(),
            seed,
        ))
    }

    /// Hybrid = analytical model stacked under extra trees.
    pub fn hybrid(
        am: Box<dyn lam_analytical::traits::AnalyticalModel>,
        config: HybridConfig,
        seed: u64,
    ) -> Box<dyn Regressor> {
        Box::new(HybridModel::new(am, Self::extra_trees(seed), config))
    }

    /// Hybrid for a workload: stacks the scenario's own analytical model
    /// under extra trees.
    pub fn hybrid_for(
        workload: &dyn DynWorkload,
        config: HybridConfig,
        seed: u64,
    ) -> Box<dyn Regressor> {
        Self::hybrid(workload.analytical_model(), config, seed)
    }
}

/// The Fig 3 protocol: decision trees / extra trees / random forests on
/// one workload's dataset across training windows. Prints each series and
/// returns the report.
pub fn run_pure_ml_panel(
    workload: &dyn DynWorkload,
    figure: &str,
    title: &str,
    train_fractions: Vec<f64>,
    seed: u64,
) -> FigureReport {
    let data = workload.generate_dataset();
    println!("{title} ({} configs)", data.len());
    let config = EvaluationConfig::new(train_fractions, defaults::TRIALS, seed);
    let mut series = Vec::new();
    for (label, factory) in [
        (
            "Decision Trees",
            StandardModels::decision_tree as fn(u64) -> Box<dyn Regressor>,
        ),
        ("Extra Trees", StandardModels::extra_trees),
        ("Random Forests", StandardModels::random_forest),
    ] {
        let points = evaluate_model(&data, &config, factory);
        print_series(label, &points);
        series.push(NamedSeries {
            label: label.to_string(),
            points,
        });
    }
    FigureReport {
        figure: figure.to_string(),
        title: title.to_string(),
        dataset_rows: data.len(),
        series,
        notes: vec![],
    }
}

/// One Extra-Trees-vs-hybrid figure (Figs 5–8 all share this shape).
pub struct EtVsHybridSpec {
    /// Report id, e.g. `fig5`.
    pub figure: String,
    /// Human title printed above the panel.
    pub title: String,
    /// Training windows for the pure Extra Trees series.
    pub et_fractions: Vec<f64>,
    /// Training windows for the hybrid series.
    pub hybrid_fractions: Vec<f64>,
    /// Hybrid options (aggregation, log feature) per the paper's protocol
    /// for the figure.
    pub hybrid_config: HybridConfig,
    /// Legend label for the Extra Trees series.
    pub et_label: String,
    /// Legend label for the hybrid series.
    pub hybrid_label: String,
    /// Evaluation seed for the Extra Trees series.
    pub et_seed: u64,
    /// Evaluation seed for the hybrid series.
    pub hybrid_seed: u64,
}

/// The Figs 5–8 protocol: pure Extra Trees vs the hybrid built from the
/// workload's own analytical model, plus the analytical-only MAPE note.
/// Prints both series and returns the report.
pub fn run_et_vs_hybrid(workload: &dyn DynWorkload, spec: EtVsHybridSpec) -> FigureReport {
    let data = workload.generate_dataset();
    println!("{} ({} configs)", spec.title, data.len());

    let am_mape = analytical_mape(&data, &*workload.analytical_model());

    let et_cfg = EvaluationConfig::new(spec.et_fractions, defaults::TRIALS, spec.et_seed);
    let et = evaluate_model(&data, &et_cfg, StandardModels::extra_trees);
    print_series(&spec.et_label, &et);

    let hy_cfg = EvaluationConfig::new(spec.hybrid_fractions, defaults::TRIALS, spec.hybrid_seed);
    let hybrid_config = spec.hybrid_config;
    let hybrid = evaluate_model(&data, &hy_cfg, |seed| {
        StandardModels::hybrid_for(workload, hybrid_config, seed)
    });
    print_series(&spec.hybrid_label, &hybrid);
    println!("\n  analytical model alone: MAPE {am_mape:.1}%");

    FigureReport {
        figure: spec.figure,
        title: spec.title,
        dataset_rows: data.len(),
        series: vec![
            NamedSeries {
                label: spec.et_label,
                points: et,
            },
            NamedSeries {
                label: spec.hybrid_label,
                points: hybrid,
            },
        ],
        notes: vec![("am_mape".into(), am_mape)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lam_stencil::config::space_grid_only;

    #[test]
    fn dataset_builders_work() {
        let d = stencil_dataset(&space_grid_only());
        assert_eq!(d.len(), 729);
        let d = fmm_dataset(&lam_fmm::config::space_small());
        assert!(!d.is_empty());
        let d = spmv_dataset(&lam_spmv::config::space_small());
        assert!(!d.is_empty());
    }

    /// The SpMV acceptance property on the full `spmv_model` space: the
    /// hybrid (roofline stacked under extra trees) beats the pure
    /// analytical roofline's MAPE, which the thread dimension pushes near
    /// 90% (the roofline deliberately models a single core).
    #[test]
    fn spmv_hybrid_beats_pure_analytical() {
        use lam_core::evaluate::analytical_mape;
        use lam_ml::metrics::mape;
        use lam_ml::sampling::train_test_split_fraction;

        let workload = blue_waters_spmv(lam_spmv::config::space_spmv());
        let data = workload.generate_dataset();
        let am_mape = analytical_mape(&data, &*workload.analytical_model());

        let (train, test) = train_test_split_fraction(&data, 0.10, 17);
        let mut hybrid = StandardModels::hybrid_for(
            &workload,
            HybridConfig {
                log_feature: true,
                ..HybridConfig::default()
            },
            3,
        );
        hybrid.fit(&train).expect("fit hybrid");
        let hybrid_mape = mape(test.response(), &hybrid.predict(&test)).unwrap();
        assert!(
            hybrid_mape < am_mape,
            "hybrid {hybrid_mape:.1}% must beat analytical {am_mape:.1}%"
        );
    }

    #[test]
    fn workload_dataset_is_erased() {
        fn rows(w: &dyn DynWorkload) -> usize {
            w.generate_dataset().len()
        }
        let w = blue_waters_stencil(space_grid_only());
        assert_eq!(rows(&w), 729);
        let w = blue_waters_fmm(lam_fmm::config::space_small());
        assert_eq!(rows(&w), w.space().len());
    }

    #[test]
    fn servable_resolves_and_memoizes_by_name() {
        let entry = servable("spmv-small").expect("builtin name resolves");
        assert_eq!(entry.name(), "spmv-small");
        assert_eq!(entry.workload().space_size(), entry.dataset().len());
        // The memo: two dataset fetches share one Arc.
        let a = servable_dataset("spmv-small").unwrap();
        let b = servable_dataset("spmv-small").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // The memoized dataset equals a from-scratch sweep of the same
        // descriptor (same space, machine, and seed).
        assert_eq!(*a, spmv_dataset(&lam_spmv::config::space_small()));
        assert!(servable("never-registered").is_err());
    }

    #[test]
    fn factories_produce_named_models() {
        assert_eq!(StandardModels::decision_tree(0).name(), "decision_tree");
        assert_eq!(StandardModels::extra_trees(0).name(), "extra_trees");
        assert_eq!(StandardModels::random_forest(0).name(), "random_forest");
        let w = blue_waters_fmm(lam_fmm::config::space_small());
        assert_eq!(
            StandardModels::hybrid_for(&w, HybridConfig::default(), 0).name(),
            "hybrid"
        );
    }
}
