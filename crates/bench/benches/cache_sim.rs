//! Criterion bench: the machine-model substrate — trace-driven cache
//! simulation throughput and the cost of one oracle evaluation (the price
//! of generating ground-truth datasets).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lam_fmm::config::FmmConfig;
use lam_fmm::oracle::FmmOracle;
use lam_machine::arch::MachineDescription;
use lam_machine::cache::Cache;
use lam_machine::hierarchy::CacheHierarchy;
use lam_stencil::config::StencilConfig;
use lam_stencil::oracle::StencilOracle;
use std::hint::black_box;

fn bench_cache_access(c: &mut Criterion) {
    let machine = MachineDescription::blue_waters_xe6();
    let mut group = c.benchmark_group("cache_sim");
    let n = 10_000u64;
    group.throughput(Throughput::Elements(n));

    group.bench_function("l1_stream", |b| {
        let mut cache = Cache::from_level(&machine.caches[0]);
        b.iter(|| {
            for i in 0..n {
                cache.access(black_box(i * 8));
            }
        })
    });

    group.bench_function("hierarchy_stream", |b| {
        let mut h = CacheHierarchy::new(&machine);
        b.iter(|| {
            for i in 0..n {
                h.access(black_box(i * 8));
            }
        })
    });
    group.finish();
}

fn bench_oracles(c: &mut Criterion) {
    let machine = MachineDescription::blue_waters_xe6();
    let stencil = StencilOracle::new(machine.clone(), 1);
    let fmm = FmmOracle::new(machine, 1);
    let mut group = c.benchmark_group("oracle_eval");
    group.bench_function("stencil", |b| {
        let cfg = StencilConfig::unblocked(128, 128, 128);
        b.iter(|| stencil.execution_time(black_box(&cfg)))
    });
    group.bench_function("fmm", |b| {
        let cfg = FmmConfig {
            t: 8,
            n: 16384,
            q: 64,
            k: 8,
        };
        b.iter(|| fmm.execution_time(black_box(&cfg)))
    });
    group.finish();
}

fn bench_dataset_generation(c: &mut Criterion) {
    use lam_core::workload::Workload as _;
    let mut group = c.benchmark_group("dataset_generation");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::from_parameter("grid_only_729"),
        &729usize,
        |b, _| {
            let machine = MachineDescription::blue_waters_xe6();
            let space = lam_stencil::config::space_grid_only();
            let workload = lam_stencil::workload::StencilWorkload::new(machine, space, 1);
            b.iter(|| black_box(&workload).generate_dataset())
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_cache_access, bench_oracles, bench_dataset_generation
}
criterion_main!(benches);
