//! Criterion bench: cost of fitting and evaluating the ML substrate
//! (single trees and forests) as dataset size grows — the "training cost"
//! axis of the paper's motivation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lam_bench::runners::stencil_dataset;
use lam_data::Dataset;
use lam_ml::forest::ExtraTreesRegressor;
use lam_ml::model::Regressor;
use lam_ml::sampling::train_test_split_count;
use lam_ml::tree::{DecisionTreeRegressor, TreeParams};
use lam_stencil::config::space_grid_blocking;
use std::hint::black_box;

fn dataset() -> Dataset {
    stencil_dataset(&space_grid_blocking())
}

fn bench_tree_fit(c: &mut Criterion) {
    let data = dataset();
    let mut group = c.benchmark_group("tree_fit");
    for n in [100usize, 400, 1600] {
        let (train, _) = train_test_split_count(&data, n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &train, |b, train| {
            b.iter(|| {
                let mut t = DecisionTreeRegressor::new(TreeParams::default(), 7);
                t.fit(black_box(train)).unwrap();
                t
            })
        });
    }
    group.finish();
}

fn bench_forest_fit(c: &mut Criterion) {
    let data = dataset();
    let (train, _) = train_test_split_count(&data, 400, 1);
    let mut group = c.benchmark_group("extra_trees_fit_400rows");
    group.sample_size(10);
    for trees in [10usize, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(trees), &trees, |b, &trees| {
            b.iter(|| {
                let mut f = ExtraTreesRegressor::with_params(trees, TreeParams::default(), 7);
                f.fit(black_box(&train)).unwrap();
                f
            })
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let data = dataset();
    let (train, test) = train_test_split_count(&data, 800, 1);
    let mut forest = ExtraTreesRegressor::with_params(100, TreeParams::default(), 7);
    forest.fit(&train).unwrap();
    let row = test.row(0);
    c.bench_function("extra_trees_predict_row", |b| {
        b.iter(|| forest.predict_row(black_box(row)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_tree_fit, bench_forest_fit, bench_predict
}
criterion_main!(benches);
