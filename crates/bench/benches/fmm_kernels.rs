//! Criterion bench: the six FMM kernels and the end-to-end solver, across
//! expansion orders — the paper's second application and the source of its
//! `k⁶` analytical scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lam_fmm::exec::Fmm;
use lam_fmm::expansion::{taylor_tensor, MultiIndexSet};
use lam_fmm::kernels::{self, KernelCtx};
use lam_fmm::particle::random_cube;
use std::hint::black_box;

fn bench_taylor_tensor(c: &mut Criterion) {
    let mut group = c.benchmark_group("taylor_tensor");
    for k in [4usize, 8, 12] {
        let set = MultiIndexSet::new(2 * k - 1);
        group.bench_with_input(BenchmarkId::from_parameter(k), &set, |b, set| {
            b.iter(|| taylor_tensor(black_box(set), black_box([0.7, -0.4, 0.9])))
        });
    }
    group.finish();
}

fn bench_m2l(c: &mut Criterion) {
    let mut group = c.benchmark_group("m2l_single_pair");
    for k in [4usize, 6, 8] {
        let ctx = KernelCtx::new(k);
        let sources = random_cube(32, 1);
        let mut moments = vec![0.0; ctx.n_terms()];
        kernels::p2m(&ctx, &sources, [0.5, 0.5, 0.5], &mut moments);
        group.bench_with_input(BenchmarkId::from_parameter(k), &ctx, |b, ctx| {
            let mut local = vec![0.0; ctx.n_terms()];
            b.iter(|| {
                kernels::m2l(
                    ctx,
                    black_box(&moments),
                    [0.1, 0.1, 0.1],
                    [0.9, 0.9, 0.9],
                    &mut local,
                )
            })
        });
    }
    group.finish();
}

fn bench_p2p(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2p_leaf_pair");
    for q in [32usize, 128] {
        let targets = random_cube(q, 2);
        let sources = random_cube(q, 3);
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, _| {
            let mut phi = vec![0.0; targets.len()];
            b.iter(|| kernels::p2p(black_box(&targets), black_box(&sources), &mut phi))
        });
    }
    group.finish();
}

fn bench_full_fmm(c: &mut Criterion) {
    let mut group = c.benchmark_group("fmm_end_to_end");
    group.sample_size(10);
    let particles = random_cube(4096, 5);
    for k in [3usize, 5] {
        let fmm = Fmm::new(k, 64, 1);
        group.bench_with_input(BenchmarkId::new("order", k), &fmm, |b, fmm| {
            b.iter(|| fmm.potentials(black_box(&particles)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_taylor_tensor, bench_m2l, bench_p2p, bench_full_fmm
}
criterion_main!(benches);
