//! Instrumentation overhead on the cached-predict hot path: the same
//! warm-cache batched predict, with metric recording enabled vs disabled
//! (`lam_obs::set_enabled`). The disabled side is the uninstrumented
//! baseline — every call site reduces to one relaxed atomic load — so
//! the pair bounds what the counters/histograms/span timers cost.
//!
//! Budget: the instrumented batch-256 path must stay within 2% of the
//! baseline (tracked by `results/BENCH_obs.json`, emitted by the `obs`
//! bin; this Criterion twin is the statistically rigorous check).
//!
//! Run: `cargo bench -p lam-bench --bench obs_overhead`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lam_serve::persist::ModelKind;
use lam_serve::registry::{ModelKey, ModelRegistry};
use lam_serve::workload::WorkloadId;

const BATCHES: [usize; 3] = [1, 64, 256];

fn bench_obs_overhead(c: &mut Criterion) {
    let root = std::env::temp_dir().join("lam_obs_bench_models");
    let registry = ModelRegistry::new(root);
    let workload = WorkloadId::get("fmm-small").expect("builtin workload");
    let model = registry
        .get(ModelKey::new(workload, ModelKind::Hybrid, 1))
        .expect("train or load");

    let mut group = c.benchmark_group("obs_overhead_cached_predict");
    for batch in BATCHES {
        let rows = workload.sample_rows(batch);
        model.predict(&rows); // warm the prediction cache
        group.throughput(Throughput::Elements(batch as u64));
        lam_obs::set_enabled(true);
        group.bench_with_input(BenchmarkId::new("instrumented", batch), &rows, |b, rows| {
            b.iter(|| model.predict(rows).predictions.len())
        });
        lam_obs::set_enabled(false);
        group.bench_with_input(
            BenchmarkId::new("uninstrumented", batch),
            &rows,
            |b, rows| b.iter(|| model.predict(rows).predictions.len()),
        );
        lam_obs::set_enabled(true);
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_obs_overhead
}
criterion_main!(benches);
