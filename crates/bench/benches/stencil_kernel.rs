//! Criterion bench: throughput of the real stencil kernel variants (naive
//! vs blocked vs threaded) — the executable workload behind the paper's
//! first application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lam_stencil::config::StencilConfig;
use lam_stencil::grid::Grid3;
use lam_stencil::kernel::{step_blocked, step_naive, step_threaded, Coefficients};
use std::hint::black_box;

fn grid(n: usize) -> Grid3 {
    let mut g = Grid3::new(n, n, n, 1);
    g.fill_with(|x, y, z| ((x * 7 + y * 5 + z * 3) % 11) as f64);
    g
}

fn bench_variants(c: &mut Criterion) {
    let n = 64;
    let src = grid(n);
    let mut dst = src.clone();
    let coef = Coefficients::default();
    let mut group = c.benchmark_group("stencil_sweep_64cubed");
    group.throughput(Throughput::Elements((n * n * n) as u64));

    group.bench_function("naive", |b| {
        b.iter(|| step_naive(black_box(&src), &mut dst, coef))
    });

    for (bi, bj, bk) in [(64, 8, 8), (16, 16, 16), (64, 64, 64)] {
        let cfg = StencilConfig {
            i: n,
            j: n,
            k: n,
            bi,
            bj,
            bk,
            unroll: 1,
            threads: 1,
        };
        group.bench_with_input(
            BenchmarkId::new("blocked", format!("{bi}x{bj}x{bk}")),
            &cfg,
            |b, cfg| b.iter(|| step_blocked(black_box(&src), &mut dst, coef, cfg)),
        );
    }

    for t in [2usize, 4] {
        let cfg = StencilConfig {
            threads: t,
            ..StencilConfig::unblocked(n, n, n)
        };
        group.bench_with_input(BenchmarkId::new("threads", t), &cfg, |b, cfg| {
            b.iter(|| step_threaded(black_box(&src), &mut dst, coef, cfg))
        });
    }
    group.finish();
}

fn bench_unroll(c: &mut Criterion) {
    let n = 64;
    let src = grid(n);
    let mut dst = src.clone();
    let coef = Coefficients::default();
    let mut group = c.benchmark_group("stencil_unroll");
    group.throughput(Throughput::Elements((n * n * n) as u64));
    for u in [1usize, 2, 4, 8] {
        let cfg = StencilConfig {
            unroll: u,
            ..StencilConfig::unblocked(n, n, n)
        };
        group.bench_with_input(BenchmarkId::from_parameter(u), &cfg, |b, cfg| {
            b.iter(|| step_blocked(black_box(&src), &mut dst, coef, cfg))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_variants, bench_unroll
}
criterion_main!(benches);
