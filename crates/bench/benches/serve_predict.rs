//! Serving-path prediction latency per model kind: single-row and
//! 256-row batched, cold (cache-bypassing model walk) vs. cache-hit
//! (through the sharded prediction cache).
//!
//! Run: `cargo bench -p lam-bench --bench serve_predict`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lam_serve::persist::ModelKind;
use lam_serve::registry::{ModelKey, ModelRegistry};
use lam_serve::workload::WorkloadId;

const BATCH: usize = 256;

fn wid(name: &str) -> WorkloadId {
    WorkloadId::get(name).expect("builtin workload")
}

fn bench_serve_predict(c: &mut Criterion) {
    let root = std::env::temp_dir().join("lam_serve_bench_models");
    let registry = ModelRegistry::new(root);
    let workload = wid("fmm-small");
    let rows = workload.sample_rows(BATCH);
    let row = rows[0].clone();

    let mut single = c.benchmark_group("serve_predict_single");
    for kind in ModelKind::all() {
        let model = registry
            .get(ModelKey::new(workload, kind, 1))
            .expect("train or load");
        single.bench_with_input(BenchmarkId::new("cold", kind), &row, |b, row| {
            b.iter(|| model.predict_row_uncached(row))
        });
        // Warm the cache, then measure the hit path (lookup + engine).
        let warm = vec![row.clone()];
        model.predict(&warm);
        single.bench_with_input(BenchmarkId::new("hit", kind), &warm, |b, warm| {
            b.iter(|| model.predict(warm).predictions[0])
        });
    }
    single.finish();

    let mut batched = c.benchmark_group("serve_predict_batch");
    batched.throughput(Throughput::Elements(BATCH as u64));
    for kind in ModelKind::all() {
        let model = registry
            .get(ModelKey::new(workload, kind, 1))
            .expect("train or load");
        // Cold per element: walk the model for every row, no cache.
        batched.bench_with_input(BenchmarkId::new("cold", kind), &rows, |b, rows| {
            b.iter(|| {
                rows.iter()
                    .map(|r| model.predict_row_uncached(r))
                    .sum::<f64>()
            })
        });
        model.predict(&rows); // warm
        batched.bench_with_input(BenchmarkId::new("hit", kind), &rows, |b, rows| {
            b.iter(|| model.predict(rows).predictions.len())
        });
    }
    batched.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve_predict
}
criterion_main!(benches);
