//! Criterion bench: prediction cost per model family — the paper's central
//! motivation is "minimize prediction cost while providing reasonable
//! accuracy". Compares one prediction by: the analytical model alone, a
//! fitted Extra Trees forest, and the hybrid (AM + stacked forest).

use criterion::{criterion_group, criterion_main, Criterion};
use lam_analytical::stencil::BlockedStencilModel;
use lam_analytical::traits::AnalyticalModel;
use lam_bench::runners::{defaults, stencil_dataset, StandardModels};
use lam_core::hybrid::{HybridConfig, HybridModel};
use lam_machine::arch::MachineDescription;
use lam_ml::model::Regressor;
use lam_ml::sampling::train_test_split_fraction;
use lam_stencil::config::space_grid_blocking;
use std::hint::black_box;

fn bench_prediction_cost(c: &mut Criterion) {
    let data = stencil_dataset(&space_grid_blocking());
    let (train, test) = train_test_split_fraction(&data, 0.04, 9);
    let machine = MachineDescription::blue_waters_xe6();
    let row = test.row(0);

    let am = BlockedStencilModel::new(machine.clone(), defaults::STENCIL_TIMESTEPS);
    c.bench_function("predict/analytical", |b| {
        b.iter(|| am.predict(black_box(row)))
    });

    let mut et = StandardModels::extra_trees(3);
    et.fit(&train).unwrap();
    c.bench_function("predict/extra_trees", |b| {
        b.iter(|| et.predict_row(black_box(row)))
    });

    let mut hybrid = HybridModel::new(
        Box::new(BlockedStencilModel::new(
            machine,
            defaults::STENCIL_TIMESTEPS,
        )),
        StandardModels::extra_trees(3),
        HybridConfig::default(),
    );
    hybrid.fit(&train).unwrap();
    c.bench_function("predict/hybrid", |b| {
        b.iter(|| hybrid.predict_row(black_box(row)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_prediction_cost
}
criterion_main!(benches);
