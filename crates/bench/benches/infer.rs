//! Arena-compiled vs interpreted tree inference, and binary vs JSON
//! artifact loading.
//!
//! The compiled arena ([`lam_ml::compile`]) serves the same predictions
//! bit for bit; these benchmarks quantify what the layout change buys:
//! per-row latency at batch sizes 1 / 64 / 256 for every tree-backed
//! model family, and registry cold-start (artifact load) time per format.
//!
//! Run: `cargo bench -p lam-bench --bench infer`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lam_serve::persist::{ModelKind, SavedModel};
use lam_serve::registry::{train, ModelKey};
use lam_serve::workload::WorkloadId;

const TREE_KINDS: [ModelKind; 4] = [
    ModelKind::Cart,
    ModelKind::RandomForest,
    ModelKind::ExtraTrees,
    ModelKind::Boosting,
];

fn wid() -> WorkloadId {
    WorkloadId::get("fmm-small").expect("builtin workload")
}

fn bench_infer(c: &mut Criterion) {
    for batch in [1usize, 64, 256] {
        let mut group = c.benchmark_group(format!("infer_batch_{batch}"));
        group.throughput(Throughput::Elements(batch as u64));
        let rows = wid().sample_rows(batch);
        for kind in TREE_KINDS {
            let saved = train(ModelKey::new(wid(), kind, 1)).expect("training succeeds");
            let interpreted = saved.clone().into_interpreted_predictor();
            let compiled = saved.into_predictor().expect("compiles");
            group.bench_with_input(BenchmarkId::new("interpreted", kind), &rows, |b, rows| {
                b.iter(|| interpreted.predict_rows(rows))
            });
            group.bench_with_input(BenchmarkId::new("compiled", kind), &rows, |b, rows| {
                b.iter(|| compiled.predict_rows(rows))
            });
        }
        group.finish();
    }

    // Cold start: parse/decode an extra-trees artifact (the biggest and
    // the paper's best pure-ML model) from each format.
    let mut load = c.benchmark_group("artifact_load");
    let dir = std::env::temp_dir().join("lam_bench_infer_load");
    let saved = train(ModelKey::new(wid(), ModelKind::ExtraTrees, 1)).expect("training succeeds");
    let bin_path = saved.save(&dir).expect("binary save");
    let json_path = saved.save_json(&dir).expect("json save");
    load.bench_function("binary", |b| {
        b.iter(|| SavedModel::load(&bin_path).expect("loads"))
    });
    load.bench_function("json", |b| {
        b.iter(|| SavedModel::load(&json_path).expect("loads"))
    });
    load.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_infer
}
criterion_main!(benches);
