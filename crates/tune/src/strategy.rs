//! The [`Tuner`] trait and the four deterministic search strategies.
//!
//! All four share the same contract: given an erased workload, a trained
//! model, and a [`TuneRequest`] (oracle-evaluation budget, result size,
//! seed), spend at most `budget` oracle evaluations and recommend the
//! best *measured* configuration. They differ in how the model guides
//! which configurations get measured:
//!
//! * [`ExhaustiveRank`] — model-score the whole space in micro-batches
//!   through the shared executor, measure the top `budget` predictions.
//! * [`RandomSearch`] — the model-free baseline: measure a seeded uniform
//!   sample of the space.
//! * [`LocalSearch`] — hill-climb on the parameter lattice
//!   ([`crate::lattice::ParamLattice`]), probing each neighborhood in
//!   model-predicted order and restarting from a fresh seeded point at
//!   local optima.
//! * [`SuccessiveHalving`] — a candidate pool shrinks by `eta` each rung
//!   while the measurement quota concentrates on the survivors, so the
//!   per-candidate measurement budget grows as the pool narrows. (The
//!   oracle here is deterministic, so "more budget per candidate" is
//!   realized as "certainty of being measured at all" rather than
//!   repeated noisy probes.)
//!
//! Every strategy is deterministic under a fixed seed: identical
//! [`TuneReport`]s, byte for byte.

use crate::oracle::BudgetedOracle;
use crate::report::{RankedConfig, TuneReport};
use crate::TuneError;
use lam_core::batch::BatchEngine;
use lam_core::catalog::DynWorkload;
use lam_core::predict::PredictRow;
use lam_ml::rng::Xoshiro256;
use std::collections::BTreeMap;

/// What a tuning run is allowed to spend and what it must return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneRequest {
    /// Oracle evaluations the strategy may spend (≥ 1).
    pub budget: usize,
    /// Ranked configurations to return (≥ 1).
    pub top_k: usize,
    /// Seed; the whole run is a pure function of (workload, model, request).
    pub seed: u64,
}

impl Default for TuneRequest {
    fn default() -> Self {
        Self {
            budget: 32,
            top_k: 5,
            seed: 0,
        }
    }
}

impl TuneRequest {
    fn validate(&self, workload: &dyn DynWorkload) -> Result<(), TuneError> {
        if workload.space_size() == 0 {
            return Err(TuneError::EmptySpace(workload.name().to_string()));
        }
        if self.budget == 0 {
            return Err(TuneError::InvalidRequest("budget must be >= 1".into()));
        }
        if self.top_k == 0 {
            return Err(TuneError::InvalidRequest("top_k must be >= 1".into()));
        }
        Ok(())
    }
}

/// A model-guided autotuning strategy over any catalog workload.
pub trait Tuner: Send + Sync {
    /// Stable strategy name (used in reports, HTTP requests, CLI flags).
    fn name(&self) -> &'static str;

    /// Tune `workload` under `request`, guided by `model` (a trained
    /// predictor over the workload's raw feature rows).
    fn tune(
        &self,
        workload: &dyn DynWorkload,
        model: &dyn PredictRow,
        request: &TuneRequest,
    ) -> Result<TuneReport, TuneError>;
}

/// Resolve a strategy by its stable name.
pub fn by_name(name: &str) -> Option<Box<dyn Tuner>> {
    match name {
        "exhaustive" => Some(Box::new(ExhaustiveRank::default())),
        "random" => Some(Box::new(RandomSearch)),
        "local" => Some(Box::new(LocalSearch)),
        "halving" => Some(Box::new(SuccessiveHalving::default())),
        _ => None,
    }
}

/// All four strategies, in canonical order.
pub fn all_strategies() -> Vec<Box<dyn Tuner>> {
    vec![
        Box::new(ExhaustiveRank::default()),
        Box::new(RandomSearch),
        Box::new(LocalSearch),
        Box::new(SuccessiveHalving::default()),
    ]
}

/// The stable names [`by_name`] resolves, in canonical order.
pub const STRATEGY_NAMES: [&str; 4] = ["exhaustive", "random", "local", "halving"];

/// Model-score `rows`. Sets larger than one micro-batch go through the
/// shared executor for the parallel fan-out; small sets (a local-search
/// frontier, a random sample) skip its cache and shard setup — within
/// one call every row is distinct, so the cache could never hit anyway —
/// but still call the model's own batch entry point, so arena-compiled
/// guides evaluate the frontier block-wise instead of row at a time.
pub(crate) fn score_rows(model: &dyn PredictRow, rows: &[Vec<f64>]) -> Vec<f64> {
    if rows.len() <= lam_core::batch::DEFAULT_MICRO_BATCH {
        model.predict_rows(rows)
    } else {
        BatchEngine::default().predict(model, rows).predictions
    }
}

/// Indices `0..scores.len()` sorted by ascending score, ties by index —
/// the deterministic ranking every strategy uses.
fn rank_ascending(scores: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
    order
}

/// Assemble the report: recommendation = best measured configuration;
/// `top` = measured configurations by oracle time, then scored-but-
/// unmeasured ones by predicted time, truncated to `top_k`. Shared by
/// every strategy *and* the active learner, so the ranking and tie-break
/// contract lives in exactly one place.
pub(crate) fn finalize(
    workload: &dyn DynWorkload,
    strategy: &'static str,
    request: &TuneRequest,
    rows: &[Vec<f64>],
    scored: &BTreeMap<usize, f64>,
    oracle: BudgetedOracle<'_>,
) -> Result<TuneReport, TuneError> {
    let (best_index, _) = oracle.best().ok_or(TuneError::NoMeasurements)?;
    let ranked = |index: usize| RankedConfig {
        index,
        features: rows[index].clone(),
        predicted: scored.get(&index).copied().unwrap_or(f64::NAN),
        oracle: oracle.measured(index),
    };

    let mut measured: Vec<(usize, f64)> = oracle
        .measurements()
        .iter()
        .map(|(&i, &t)| (i, t))
        .collect();
    measured.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let mut unmeasured: Vec<(usize, f64)> = scored
        .iter()
        .filter(|(i, _)| oracle.measured(**i).is_none())
        .map(|(&i, &p)| (i, p))
        .collect();
    unmeasured.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    let top: Vec<RankedConfig> = measured
        .iter()
        .chain(&unmeasured)
        .take(request.top_k)
        .map(|&(i, _)| ranked(i))
        .collect();
    let best = ranked(best_index);

    Ok(TuneReport {
        workload: workload.name().to_string(),
        strategy: strategy.to_string(),
        space_size: rows.len(),
        budget: request.budget,
        evaluations: oracle.spent(),
        best,
        top,
        true_best: None,
        regret: None,
        trajectory: oracle.into_trajectory(),
    })
}

/// Model-score the **whole space** in micro-batches, then spend the
/// entire budget measuring the top-predicted configurations.
#[derive(Debug, Clone, Copy)]
pub struct ExhaustiveRank {
    /// Micro-batch size for space scoring.
    pub micro_batch: usize,
}

impl Default for ExhaustiveRank {
    fn default() -> Self {
        Self {
            micro_batch: lam_core::batch::DEFAULT_MICRO_BATCH,
        }
    }
}

impl Tuner for ExhaustiveRank {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn tune(
        &self,
        workload: &dyn DynWorkload,
        model: &dyn PredictRow,
        request: &TuneRequest,
    ) -> Result<TuneReport, TuneError> {
        request.validate(workload)?;
        let rows = workload.feature_rows();
        let engine = BatchEngine::new(self.micro_batch, self.micro_batch);
        let predictions = engine.predict(model, &rows).predictions;
        let scored: BTreeMap<usize, f64> = predictions.iter().copied().enumerate().collect();
        let mut oracle = BudgetedOracle::new(workload, request.budget);
        for index in rank_ascending(&predictions) {
            if oracle.measure(index).is_none() {
                break;
            }
        }
        finalize(workload, self.name(), request, &rows, &scored, oracle)
    }
}

/// The model-free baseline: measure a seeded uniform sample (without
/// replacement) of the space. The model is only consulted to report
/// predicted times alongside the measurements.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSearch;

impl Tuner for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn tune(
        &self,
        workload: &dyn DynWorkload,
        model: &dyn PredictRow,
        request: &TuneRequest,
    ) -> Result<TuneReport, TuneError> {
        request.validate(workload)?;
        let rows = workload.feature_rows();
        let mut rng = Xoshiro256::seeded(request.seed);
        let sample = rng.sample_indices(rows.len(), request.budget.min(rows.len()));
        let sample_rows: Vec<Vec<f64>> = sample.iter().map(|&i| rows[i].clone()).collect();
        let predictions = score_rows(model, &sample_rows);
        let scored: BTreeMap<usize, f64> = sample
            .iter()
            .copied()
            .zip(predictions.iter().copied())
            .collect();
        let mut oracle = BudgetedOracle::new(workload, request.budget);
        for &index in &sample {
            if oracle.measure(index).is_none() {
                break;
            }
        }
        finalize(workload, self.name(), request, &rows, &scored, oracle)
    }
}

/// Neighborhood hill-climb on the parameter lattice: from a seeded start,
/// score the current point's lattice neighbors with the model and measure
/// them most-promising-first; move to the first measured improvement. At
/// a local optimum, restart from a fresh seeded unmeasured point until
/// the budget runs out.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalSearch;

impl Tuner for LocalSearch {
    fn name(&self) -> &'static str {
        "local"
    }

    fn tune(
        &self,
        workload: &dyn DynWorkload,
        model: &dyn PredictRow,
        request: &TuneRequest,
    ) -> Result<TuneReport, TuneError> {
        request.validate(workload)?;
        let lattice = crate::lattice::ParamLattice::new(workload.feature_rows());
        let n = lattice.len();
        let mut rng = Xoshiro256::seeded(request.seed);
        let mut scored: BTreeMap<usize, f64> = BTreeMap::new();
        let mut oracle = BudgetedOracle::new(workload, request.budget);

        'restarts: while oracle.remaining() > 0 && oracle.spent() < n {
            // Fresh start: a seeded draw over the unmeasured indices.
            let unmeasured: Vec<usize> = (0..n).filter(|&i| oracle.measured(i).is_none()).collect();
            let mut current = unmeasured[rng.next_below(unmeasured.len())];
            scored
                .entry(current)
                .or_insert_with(|| model.predict_row(&lattice.rows()[current]));
            let Some(mut current_time) = oracle.measure(current) else {
                break;
            };

            loop {
                let frontier: Vec<usize> = lattice
                    .neighbors(current)
                    .into_iter()
                    .filter(|&i| oracle.measured(i).is_none())
                    .collect();
                if frontier.is_empty() {
                    continue 'restarts; // exhausted neighborhood
                }
                // Score through the memo: a candidate seen from an earlier
                // neighborhood is never re-predicted.
                let preds: Vec<f64> = frontier
                    .iter()
                    .map(|&i| {
                        *scored
                            .entry(i)
                            .or_insert_with(|| model.predict_row(&lattice.rows()[i]))
                    })
                    .collect();
                // Probe most-promising-first; move on first improvement.
                let mut moved = false;
                for pos in rank_ascending(&preds) {
                    let candidate = frontier[pos];
                    let Some(t) = oracle.measure(candidate) else {
                        break 'restarts;
                    };
                    if t < current_time {
                        current = candidate;
                        current_time = t;
                        moved = true;
                        break;
                    }
                }
                if !moved {
                    continue 'restarts; // local optimum
                }
            }
        }
        finalize(
            workload,
            self.name(),
            request,
            lattice.rows(),
            &scored,
            oracle,
        )
    }
}

/// Successive halving: build a candidate pool of up to
/// `pool_factor × budget` configurations — half *exploit* (the model's
/// top predictions over the whole space) and half *explore* (a seeded
/// random draw from the rest, hedging against model error) — then
/// repeatedly measure the most promising unmeasured candidates under a
/// per-rung quota, re-rank by best available information (oracle beats
/// model), and keep the top `1/eta` of the pool.
#[derive(Debug, Clone, Copy)]
pub struct SuccessiveHalving {
    /// Pool shrink factor per rung (≥ 2).
    pub eta: usize,
    /// Initial pool size as a multiple of the budget.
    pub pool_factor: usize,
}

impl Default for SuccessiveHalving {
    fn default() -> Self {
        Self {
            eta: 2,
            pool_factor: 2,
        }
    }
}

impl Tuner for SuccessiveHalving {
    fn name(&self) -> &'static str {
        "halving"
    }

    fn tune(
        &self,
        workload: &dyn DynWorkload,
        model: &dyn PredictRow,
        request: &TuneRequest,
    ) -> Result<TuneReport, TuneError> {
        request.validate(workload)?;
        let eta = self.eta.max(2);
        let rows = workload.feature_rows();
        let mut rng = Xoshiro256::seeded(request.seed);
        let pool_size = rows
            .len()
            .min(request.budget.saturating_mul(self.pool_factor.max(1)));

        // Model scoring costs no oracle budget, so score the whole space
        // once; the exploit half of the pool is its top predictions.
        let predictions = score_rows(model, &rows);
        let scored: BTreeMap<usize, f64> = predictions.iter().copied().enumerate().collect();
        let rank = rank_ascending(&predictions);
        let exploit_n = pool_size.div_ceil(2);
        let mut pool: Vec<usize> = rank[..exploit_n].to_vec();
        // The explore half: a seeded draw from the remaining indices.
        let rest = &rank[exploit_n..];
        let explore_n = (pool_size - exploit_n).min(rest.len());
        pool.extend(
            rng.sample_indices(rest.len(), explore_n)
                .iter()
                .map(|&p| rest[p]),
        );

        let mut oracle = BudgetedOracle::new(workload, request.budget);
        // Rank the pool by predicted time before the first rung.
        pool.sort_by(|&a, &b| scored[&a].total_cmp(&scored[&b]).then(a.cmp(&b)));

        while pool.len() > 1 && oracle.remaining() > 0 {
            // Spread the remaining budget over the rungs still ahead, so
            // the per-candidate quota grows as the pool halves.
            let rungs_left = pool.len().ilog2().max(1) as usize;
            let quota = oracle.remaining().div_ceil(rungs_left).max(1);
            let mut spent_this_rung = 0;
            for &index in pool.iter() {
                if spent_this_rung >= quota {
                    break;
                }
                if oracle.measured(index).is_some() {
                    continue;
                }
                if oracle.measure(index).is_none() {
                    break;
                }
                spent_this_rung += 1;
            }
            // Re-rank: measured candidates by oracle time first, then
            // unmeasured by model prediction; keep the top 1/eta.
            pool.sort_by(|&a, &b| {
                let key = |i: usize| match oracle.measured(i) {
                    Some(t) => (0u8, t),
                    None => (1u8, scored[&i]),
                };
                let (ka, ta) = key(a);
                let (kb, tb) = key(b);
                ka.cmp(&kb).then(ta.total_cmp(&tb)).then(a.cmp(&b))
            });
            pool.truncate(pool.len().div_ceil(eta));
        }
        // A degenerate pool (budget 1, pool 1) may exit without measuring.
        if oracle.best().is_none() {
            if let Some(&index) = pool.first() {
                oracle.measure(index);
            }
        }
        finalize(workload, self.name(), request, &rows, &scored, oracle)
    }
}
