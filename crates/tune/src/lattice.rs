//! The parameter lattice: a neighborhood structure over a workload's
//! feature rows, for local search.
//!
//! Two configurations are *lattice neighbors* when they differ in exactly
//! one feature column, and in that column by one step along the sorted
//! distinct values the space actually contains. This recovers the natural
//! "adjacent grid size / adjacent block size / one more thread" moves of
//! a factorial tuning space without knowing anything about the concrete
//! configuration type — and on non-factorial spaces (e.g. blocking spaces
//! where `bj ≤ J`), a stepped row that does not exist in the space is
//! simply not a neighbor.

use lam_core::batch::row_key;
use std::collections::HashMap;

/// Neighborhood structure over one workload's canonical feature rows.
pub struct ParamLattice {
    rows: Vec<Vec<f64>>,
    index_of: HashMap<Box<[u64]>, usize>,
    /// Per feature column: the sorted distinct values present in the space.
    axis_values: Vec<Vec<f64>>,
}

impl ParamLattice {
    /// Build the lattice for a space's feature rows (canonical order).
    pub fn new(rows: Vec<Vec<f64>>) -> Self {
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut axis_values: Vec<Vec<f64>> = vec![Vec::new(); n_cols];
        for row in &rows {
            for (c, &v) in row.iter().enumerate() {
                axis_values[c].push(v);
            }
        }
        for axis in &mut axis_values {
            axis.sort_by(f64::total_cmp);
            axis.dedup();
        }
        // Duplicate rows (spaces never contain them, but a hand-rolled
        // DynWorkload might): first index wins, deterministically.
        let mut index_of = HashMap::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            index_of.entry(row_key(row)).or_insert(i);
        }
        Self {
            rows,
            index_of,
            axis_values,
        }
    }

    /// The feature rows the lattice was built over.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Number of configurations.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` for an empty space.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Space index of a feature row, if the space contains it.
    pub fn index_of(&self, row: &[f64]) -> Option<usize> {
        self.index_of.get(&row_key(row)).copied()
    }

    /// Lattice neighbors of configuration `index`: one axis stepped to an
    /// adjacent distinct value, the resulting row present in the space.
    /// Deterministic order (axis-major, down-step before up-step).
    pub fn neighbors(&self, index: usize) -> Vec<usize> {
        let row = &self.rows[index];
        let mut out = Vec::new();
        for (c, &v) in row.iter().enumerate() {
            let axis = &self.axis_values[c];
            let pos = axis
                .binary_search_by(|a| a.total_cmp(&v))
                .expect("row value present in its own axis");
            let mut step = |to: usize| {
                let mut stepped = row.clone();
                stepped[c] = axis[to];
                if let Some(&j) = self.index_of.get(&row_key(&stepped)) {
                    if j != index && !out.contains(&j) {
                        out.push(j);
                    }
                }
            };
            if pos > 0 {
                step(pos - 1);
            }
            if pos + 1 < axis.len() {
                step(pos + 1);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3×3 factorial space over (a, b) ∈ {1,2,4} × {10, 20, 30}.
    fn grid() -> ParamLattice {
        let mut rows = Vec::new();
        for a in [1.0, 2.0, 4.0] {
            for b in [10.0, 20.0, 30.0] {
                rows.push(vec![a, b]);
            }
        }
        ParamLattice::new(rows)
    }

    #[test]
    fn interior_point_has_four_neighbors() {
        let lattice = grid();
        let center = lattice.index_of(&[2.0, 20.0]).unwrap();
        let mut n = lattice.neighbors(center);
        n.sort_unstable();
        let mut expected: Vec<usize> = [[1.0, 20.0], [2.0, 10.0], [2.0, 30.0], [4.0, 20.0]]
            .iter()
            .map(|r| lattice.index_of(r).unwrap())
            .collect();
        expected.sort_unstable();
        assert_eq!(n, expected);
    }

    #[test]
    fn corner_point_has_two_neighbors() {
        let lattice = grid();
        let corner = lattice.index_of(&[1.0, 10.0]).unwrap();
        assert_eq!(lattice.neighbors(corner).len(), 2);
    }

    #[test]
    fn missing_stepped_rows_are_not_neighbors() {
        // Non-factorial space: (4, 30) removed, so (4, 20)'s up-step in b
        // and (2, 30)'s up-step in a both vanish.
        let rows: Vec<Vec<f64>> = grid()
            .rows()
            .iter()
            .filter(|r| r.as_slice() != [4.0, 30.0])
            .cloned()
            .collect();
        let lattice = ParamLattice::new(rows);
        let i = lattice.index_of(&[4.0, 20.0]).unwrap();
        let n = lattice.neighbors(i);
        assert!(!n.iter().any(|&j| lattice.rows()[j] == [4.0, 30.0]));
        assert_eq!(n.len(), 2); // (2, 20) and (4, 10)
    }
}
