//! The autotuner's result type: what was recommended, what it cost to
//! find, and how close it landed to the true optimum.

use serde::{Deserialize, Serialize};

/// One configuration in a tuning result, identified by its index in the
/// workload's canonical parameter space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedConfig {
    /// Index into the workload's `param_space` (canonical space order).
    pub index: usize,
    /// The configuration's feature row.
    pub features: Vec<f64>,
    /// The model's predicted execution time, seconds.
    pub predicted: f64,
    /// The oracle-measured execution time, seconds — `None` when the
    /// strategy ranked this configuration without spending a measurement
    /// on it.
    pub oracle: Option<f64>,
}

/// One point of a tuning run's trajectory, recorded after every oracle
/// measurement: the incumbent (best measured configuration so far) as a
/// function of evaluations spent. Plotting `best_oracle` against
/// `evaluations` across strategies gives the regret-vs-budget curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Oracle evaluations spent when this point was recorded.
    pub evaluations: usize,
    /// Space index of the incumbent.
    pub incumbent: usize,
    /// Measured execution time of the incumbent, seconds.
    pub best_oracle: f64,
}

/// Outcome of one tuning run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneReport {
    /// Workload name the run tuned.
    pub workload: String,
    /// Strategy that produced the result.
    pub strategy: String,
    /// Configurations in the workload's space.
    pub space_size: usize,
    /// Oracle-evaluation budget the run was given.
    pub budget: usize,
    /// Oracle evaluations actually spent (≤ `budget`).
    pub evaluations: usize,
    /// The recommendation: best *measured* configuration (its `oracle`
    /// field is always `Some`).
    pub best: RankedConfig,
    /// Top configurations by the strategy's final ranking — measured ones
    /// first (by oracle time), then unmeasured ones by predicted time.
    pub top: Vec<RankedConfig>,
    /// True-best oracle time over the whole space; populated by
    /// [`TuneReport::attach_regret`] when the memoized full dataset is
    /// available.
    pub true_best: Option<f64>,
    /// `best.oracle / true_best` (1.0 = found the optimum); populated
    /// alongside `true_best`.
    pub regret: Option<f64>,
    /// Incumbent after every oracle evaluation, in evaluation order.
    pub trajectory: Vec<TrajectoryPoint>,
}

impl TuneReport {
    /// Fill `true_best` and `regret` from a full-space response vector
    /// (the memoized dataset's oracle sweep). Call this only when the
    /// sweep has already been paid for — computing it just to report
    /// regret would defeat the budget the tuner accounted for.
    pub fn attach_regret(&mut self, full_response: &[f64]) {
        let true_best = full_response.iter().copied().fold(f64::INFINITY, f64::min);
        self.true_best = Some(true_best);
        self.regret = self.best.oracle.map(|t| t / true_best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> TuneReport {
        TuneReport {
            workload: "toy".into(),
            strategy: "random".into(),
            space_size: 10,
            budget: 4,
            evaluations: 3,
            best: RankedConfig {
                index: 7,
                features: vec![7.0],
                predicted: 0.9,
                oracle: Some(1.1),
            },
            top: vec![],
            true_best: None,
            regret: None,
            trajectory: vec![TrajectoryPoint {
                evaluations: 1,
                incumbent: 7,
                best_oracle: 1.1,
            }],
        }
    }

    #[test]
    fn attach_regret_uses_space_minimum() {
        let mut r = report();
        r.attach_regret(&[2.0, 1.0, 5.5]);
        assert_eq!(r.true_best, Some(1.0));
        assert!((r.regret.unwrap() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: TuneReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.best.oracle, Some(1.1));
        assert_eq!(back.true_best, None);
    }
}
