//! The active-learning loop — the paper's headline workflow as a tested
//! API instead of an example: *measure a tiny sample, fit the hybrid,
//! let the model propose what to measure next, refit, repeat.*
//!
//! Each round: fit a hybrid (the workload's own analytical model stacked
//! under extra trees, per its [`lam_core::hybrid::HybridConfig`]) on
//! everything measured so far, model-score the unmeasured remainder of
//! the space through the batched executor, measure the top proposals with
//! the oracle, and append them to the training set. The loop stops when
//! the evaluation budget (which *includes* the initial sample) is spent,
//! and the final report ranks the whole space under the last refit.

use crate::oracle::BudgetedOracle;
use crate::report::TuneReport;
use crate::strategy::TuneRequest;
use crate::TuneError;
use lam_core::batch::BatchEngine;
use lam_core::catalog::DynWorkload;
use lam_core::hybrid::HybridModel;
use lam_core::predict::PredictRow;
use lam_ml::forest::ExtraTreesRegressor;
use lam_ml::model::Regressor;
use lam_ml::rng::{splitmix64, Xoshiro256};
use lam_ml::tree::TreeParams;
use std::collections::BTreeMap;

/// Options of one active-learning run.
#[derive(Debug, Clone, Copy)]
pub struct ActiveLearnOptions {
    /// Total oracle evaluations, initial sample included.
    pub budget: usize,
    /// Initial measured sample, as a fraction of the space (the paper's
    /// protocol trains on ~3%).
    pub initial_fraction: f64,
    /// Configurations proposed (and measured) per refit round.
    pub proposals_per_round: usize,
    /// Ranked configurations in the final report.
    pub top_k: usize,
    /// Seed; the run is a pure function of (workload, options).
    pub seed: u64,
    /// Trees in the stacked extra-trees regressor.
    pub n_trees: usize,
}

impl Default for ActiveLearnOptions {
    fn default() -> Self {
        Self {
            budget: 32,
            initial_fraction: 0.03,
            proposals_per_round: 8,
            top_k: 5,
            seed: 0,
            n_trees: 30,
        }
    }
}

/// Strategy name under which active-learning reports label themselves.
pub const ACTIVE_STRATEGY: &str = "active";

/// Fit the workload's hybrid on the oracle's measurements so far.
fn fit_hybrid(
    workload: &dyn DynWorkload,
    rows: &[Vec<f64>],
    oracle: &BudgetedOracle<'_>,
    seed: u64,
    n_trees: usize,
) -> Result<HybridModel, TuneError> {
    let measured_rows: Vec<Vec<f64>> = oracle
        .measurements()
        .keys()
        .map(|&i| rows[i].clone())
        .collect();
    let ys: Vec<f64> = oracle.measurements().values().copied().collect();
    let data = lam_data::Dataset::from_rows(workload.feature_names(), &measured_rows, ys)
        .map_err(|e| TuneError::InvalidRequest(format!("measured sample not fittable: {e}")))?;
    let mut hybrid = HybridModel::new(
        workload.analytical_model(),
        Box::new(ExtraTreesRegressor::with_params(
            n_trees,
            TreeParams::default(),
            seed,
        )),
        workload.hybrid_config(),
    );
    hybrid.fit(&data).map_err(TuneError::Fit)?;
    Ok(hybrid)
}

/// Run the active-learning loop against `workload`.
pub fn active_learn(
    workload: &dyn DynWorkload,
    options: &ActiveLearnOptions,
) -> Result<TuneReport, TuneError> {
    if workload.space_size() == 0 {
        return Err(TuneError::EmptySpace(workload.name().to_string()));
    }
    if options.budget == 0 || options.proposals_per_round == 0 || options.top_k == 0 {
        return Err(TuneError::InvalidRequest(
            "budget, proposals_per_round, and top_k must all be >= 1".into(),
        ));
    }
    if !(0.0..=1.0).contains(&options.initial_fraction) {
        return Err(TuneError::InvalidRequest(format!(
            "initial_fraction {} outside [0, 1]",
            options.initial_fraction
        )));
    }
    let rows = workload.feature_rows();
    let n = rows.len();
    let mut oracle = BudgetedOracle::new(workload, options.budget.min(n));

    // Round 0: the seeded initial sample (at least one measurement, never
    // more than the budget).
    let n_init =
        ((n as f64 * options.initial_fraction).round() as usize).clamp(1, options.budget.min(n));
    let mut rng = Xoshiro256::seeded(options.seed);
    for index in rng.sample_indices(n, n_init) {
        oracle.measure(index);
    }

    // Refit → propose → measure, until the budget is gone.
    let mut round: u64 = 0;
    let model = loop {
        // One independent, reproducible fit seed per round.
        let mut seed_state = options.seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let fit_seed = splitmix64(&mut seed_state);
        let hybrid = fit_hybrid(workload, &rows, &oracle, fit_seed, options.n_trees)?;
        if oracle.remaining() == 0 {
            break hybrid;
        }
        let unmeasured: Vec<usize> = (0..n).filter(|&i| oracle.measured(i).is_none()).collect();
        if unmeasured.is_empty() {
            break hybrid;
        }
        let unmeasured_rows: Vec<Vec<f64>> = unmeasured.iter().map(|&i| rows[i].clone()).collect();
        let preds = crate::strategy::score_rows(&hybrid, &unmeasured_rows);
        let mut order: Vec<usize> = (0..unmeasured.len()).collect();
        order.sort_by(|&a, &b| preds[a].total_cmp(&preds[b]).then(a.cmp(&b)));
        for &pos in order.iter().take(options.proposals_per_round) {
            if oracle.measure(unmeasured[pos]).is_none() {
                break;
            }
        }
        round += 1;
    };

    // Final ranking of the whole space under the last refit; the report
    // assembly (measured-first ordering, tie-breaks) is the same code
    // path every fixed-model strategy uses.
    let view: &dyn PredictRow = &model;
    let predictions = BatchEngine::default().predict(view, &rows).predictions;
    let scored: BTreeMap<usize, f64> = predictions.iter().copied().enumerate().collect();
    crate::strategy::finalize(
        workload,
        ACTIVE_STRATEGY,
        &TuneRequest {
            budget: options.budget,
            top_k: options.top_k,
            seed: options.seed,
        },
        &rows,
        &scored,
        oracle,
    )
}
