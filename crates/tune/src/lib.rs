//! # lam-tune
//!
//! Model-guided autotuning over any catalog workload — the workflow the
//! paper's hybrid models exist for, promoted from ad-hoc example code to
//! a first-class subsystem. Everything runs over the object-safe
//! [`lam_core::catalog::DynWorkload`] surface and scores models through
//! the shared batched executor ([`lam_core::batch::BatchEngine`]), so a
//! scenario registered at runtime is tunable exactly like a built-in.
//!
//! Three layers:
//!
//! * [`oracle::BudgetedOracle`] — measurement-budget accounting: every
//!   oracle evaluation is counted, memoized, and recorded into the
//!   incumbent trajectory that regret-vs-budget curves are plotted from;
//! * [`strategy`] — the [`strategy::Tuner`] trait and four deterministic,
//!   seeded strategies (`exhaustive`, `random`, `local`, `halving`);
//! * [`active`] — the active-learning loop: fit the hybrid on a tiny
//!   measured sample, let it propose the next measurements, refit, repeat
//!   under an explicit evaluation budget.
//!
//! ## Quick example
//!
//! ```no_run
//! use lam_core::catalog::WorkloadCatalog;
//! use lam_tune::{active_learn, ActiveLearnOptions};
//!
//! let entry = WorkloadCatalog::global().resolve("stencil-grid").unwrap();
//! let report = active_learn(
//!     entry.workload(),
//!     &ActiveLearnOptions {
//!         budget: 36, // ≈ 5% of the 729-config space
//!         ..ActiveLearnOptions::default()
//!     },
//! )
//! .unwrap();
//! println!(
//!     "best config #{} at {:.3} ms after {} measurements",
//!     report.best.index,
//!     report.best.oracle.unwrap() * 1e3,
//!     report.evaluations
//! );
//! ```

pub mod active;
pub mod lattice;
pub mod oracle;
pub mod report;
pub mod strategy;

pub use active::{active_learn, ActiveLearnOptions, ACTIVE_STRATEGY};
pub use lattice::ParamLattice;
pub use oracle::BudgetedOracle;
pub use report::{RankedConfig, TrajectoryPoint, TuneReport};
pub use strategy::{
    all_strategies, by_name, ExhaustiveRank, LocalSearch, RandomSearch, SuccessiveHalving,
    TuneRequest, Tuner, STRATEGY_NAMES,
};

use std::fmt;

/// Errors produced across the tuning subsystem.
#[derive(Debug)]
pub enum TuneError {
    /// The workload's configuration space is empty.
    EmptySpace(String),
    /// A request parameter is out of range.
    InvalidRequest(String),
    /// A strategy finished without a single oracle measurement (defensive:
    /// unreachable for a validated request).
    NoMeasurements,
    /// Refitting the model inside the active-learning loop failed.
    Fit(lam_ml::model::FitError),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::EmptySpace(w) => {
                write!(f, "workload `{w}` has an empty configuration space")
            }
            TuneError::InvalidRequest(m) => write!(f, "invalid tune request: {m}"),
            TuneError::NoMeasurements => write!(f, "tuning finished without any measurement"),
            TuneError::Fit(e) => write!(f, "model refit failed: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}
