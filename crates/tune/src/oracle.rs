//! Measurement-budget accounting: every oracle evaluation a strategy
//! spends goes through [`BudgetedOracle`], which memoizes per-index
//! measurements (re-measuring a configuration is free — the oracle is
//! deterministic, so a repeat buys no information), enforces the budget,
//! and records the incumbent trajectory the regret-vs-budget curves are
//! plotted from.

use crate::report::TrajectoryPoint;
use lam_core::catalog::DynWorkload;
use lam_obs::{Counter, Histogram};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// A budgeted, memoizing view of one workload's oracle.
pub struct BudgetedOracle<'a> {
    workload: &'a dyn DynWorkload,
    budget: usize,
    measured: BTreeMap<usize, f64>,
    trajectory: Vec<TrajectoryPoint>,
    incumbent: Option<(usize, f64)>,
    evaluations: Arc<Counter>,
    measure_ns: Arc<Histogram>,
}

impl<'a> BudgetedOracle<'a> {
    /// Budget `budget` oracle evaluations against `workload`.
    pub fn new(workload: &'a dyn DynWorkload, budget: usize) -> Self {
        // Tuning telemetry is per workload: evaluations actually spent
        // (memo hits are free and not counted) and how long one oracle
        // measurement takes. Interned once per tuning run, not per
        // measurement.
        let labels = [("workload", workload.name())];
        Self {
            workload,
            budget,
            measured: BTreeMap::new(),
            trajectory: Vec::new(),
            incumbent: None,
            evaluations: lam_obs::global().counter(
                "lam_tune_evaluations_total",
                "Oracle evaluations spent by tuning strategies.",
                &labels,
            ),
            measure_ns: lam_obs::global().histogram(
                "lam_tune_measure_duration_ns",
                "Duration of one oracle measurement, nanoseconds.",
                &labels,
            ),
        }
    }

    /// Measure configuration `index`. Returns the memoized value for an
    /// already-measured index without spending budget; returns `None`
    /// when the index is unmeasured and the budget is exhausted.
    pub fn measure(&mut self, index: usize) -> Option<f64> {
        if let Some(&t) = self.measured.get(&index) {
            return Some(t);
        }
        if self.measured.len() >= self.budget {
            return None;
        }
        let started = lam_obs::enabled().then(Instant::now);
        let t = self.workload.measure(index);
        self.evaluations.inc();
        if let Some(started) = started {
            self.measure_ns.record(started.elapsed().as_nanos() as u64);
        }
        self.measured.insert(index, t);
        // Ties keep the earlier incumbent: strictly-better only.
        if self.incumbent.is_none_or(|(_, best)| t < best) {
            self.incumbent = Some((index, t));
        }
        let (incumbent, best_oracle) = self.incumbent.expect("set above");
        self.trajectory.push(TrajectoryPoint {
            evaluations: self.measured.len(),
            incumbent,
            best_oracle,
        });
        Some(t)
    }

    /// Evaluations spent so far.
    pub fn spent(&self) -> usize {
        self.measured.len()
    }

    /// Evaluations left in the budget.
    pub fn remaining(&self) -> usize {
        self.budget - self.measured.len()
    }

    /// The budget this oracle was created with.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// All measurements taken, keyed by space index (sorted order).
    pub fn measurements(&self) -> &BTreeMap<usize, f64> {
        &self.measured
    }

    /// Measured time of `index`, if it has been measured.
    pub fn measured(&self, index: usize) -> Option<f64> {
        self.measured.get(&index).copied()
    }

    /// Best measured configuration so far, `(index, time)`.
    pub fn best(&self) -> Option<(usize, f64)> {
        self.incumbent
    }

    /// The incumbent trajectory, one point per evaluation spent.
    pub fn trajectory(&self) -> &[TrajectoryPoint] {
        &self.trajectory
    }

    /// Consume the oracle, returning the trajectory.
    pub fn into_trajectory(self) -> Vec<TrajectoryPoint> {
        self.trajectory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lam_analytical::traits::{AnalyticalModel, ConstantModel};
    use lam_core::workload::Workload;

    struct Toy;
    impl Workload for Toy {
        type Config = u64;
        fn name(&self) -> &str {
            "toy"
        }
        fn feature_names(&self) -> Vec<String> {
            vec!["n".to_string()]
        }
        fn param_space(&self) -> &[u64] {
            // Decreasing time with index so index 9 is the optimum.
            const SPACE: [u64; 10] = [10, 9, 8, 7, 6, 5, 4, 3, 2, 1];
            &SPACE
        }
        fn features(&self, cfg: &u64) -> Vec<f64> {
            vec![*cfg as f64]
        }
        fn execution_time(&self, cfg: &u64) -> f64 {
            *cfg as f64
        }
        fn problem_size(&self, cfg: &u64) -> f64 {
            *cfg as f64
        }
        fn analytical_model(&self) -> Box<dyn AnalyticalModel> {
            Box::new(ConstantModel(1.0))
        }
    }

    #[test]
    fn budget_is_enforced_and_memo_is_free() {
        let toy = Toy;
        let mut oracle = BudgetedOracle::new(&toy, 2);
        assert_eq!(oracle.measure(0), Some(10.0));
        assert_eq!(oracle.measure(3), Some(7.0));
        assert_eq!(oracle.spent(), 2);
        assert_eq!(oracle.remaining(), 0);
        // Unmeasured index past the budget: refused.
        assert_eq!(oracle.measure(5), None);
        // Re-measuring a memoized index costs nothing and still answers.
        assert_eq!(oracle.measure(0), Some(10.0));
        assert_eq!(oracle.spent(), 2);
        assert_eq!(oracle.best(), Some((3, 7.0)));
    }

    #[test]
    fn evaluations_feed_the_metrics_registry() {
        let toy = Toy;
        let labels = [("workload", "toy")];
        let evals = lam_obs::global().counter(
            "lam_tune_evaluations_total",
            "Oracle evaluations spent by tuning strategies.",
            &labels,
        );
        let durations = lam_obs::global().histogram(
            "lam_tune_measure_duration_ns",
            "Duration of one oracle measurement, nanoseconds.",
            &labels,
        );
        // Other tests in this binary share the global registry, so
        // assert on deltas, not absolute values.
        let evals_before = evals.get();
        let count_before = durations.snapshot().count();
        let mut oracle = BudgetedOracle::new(&toy, 3);
        oracle.measure(0);
        oracle.measure(1);
        oracle.measure(0); // memo hit: free, not counted
        assert_eq!(evals.get() - evals_before, 2);
        assert_eq!(durations.snapshot().count() - count_before, 2);
    }

    #[test]
    fn trajectory_tracks_the_incumbent() {
        let toy = Toy;
        let mut oracle = BudgetedOracle::new(&toy, 4);
        for i in [2, 8, 5] {
            oracle.measure(i);
        }
        let t = oracle.trajectory();
        assert_eq!(t.len(), 3);
        assert_eq!((t[0].incumbent, t[0].best_oracle), (2, 8.0));
        assert_eq!((t[1].incumbent, t[1].best_oracle), (8, 2.0));
        // A worse measurement keeps the incumbent.
        assert_eq!((t[2].incumbent, t[2].best_oracle), (8, 2.0));
        assert_eq!(t[2].evaluations, 3);
    }
}
