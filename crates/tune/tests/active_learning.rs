//! The paper's headline result as an executable acceptance test: on the
//! stencil grid space, measure a 3% initial sample, let the hybrid
//! propose further measurements under a total budget of ≤ 5% of the
//! space, and land within 5% of the true-best execution time — plus the
//! determinism and budget-accounting contract of the loop itself.

use lam_core::catalog::{DynWorkload, WorkloadCatalog, SERVE_NOISE_SEED};
use lam_machine::arch::MachineDescription;
use lam_stencil::config::space_grid_only;
use lam_stencil::workload::StencilWorkload;
use lam_tune::{active_learn, ActiveLearnOptions, ACTIVE_STRATEGY};
use std::sync::Arc;

/// `stencil-grid` (the paper's Fig 5 space, 729 configurations) as a
/// catalog entry, registered the same way `lam-serve` registers it.
fn stencil_grid() -> Arc<lam_core::catalog::WorkloadEntry> {
    let catalog = WorkloadCatalog::global();
    lam_stencil::workload::register_servable(catalog).expect("stencil registers");
    catalog.resolve("stencil-grid").expect("registered")
}

#[test]
fn three_percent_sample_five_percent_budget_lands_within_five_percent_of_optimal() {
    let entry = stencil_grid();
    let workload = entry.workload();
    let space = workload.space_size();
    assert_eq!(space, 729);

    // ≤ 5% of the space, initial sample (3%) included.
    let budget = space / 20; // 36
    let options = ActiveLearnOptions {
        budget,
        initial_fraction: 0.03,
        proposals_per_round: 8,
        top_k: 5,
        seed: 20190520,
        n_trees: 30,
    };
    let mut report = active_learn(workload, &options).expect("active learning runs");

    assert_eq!(report.strategy, ACTIVE_STRATEGY);
    assert!(report.evaluations <= budget, "spent {}", report.evaluations);
    assert_eq!(report.trajectory.len(), report.evaluations);

    // Regret against the memoized full dataset (the only place the full
    // sweep is consulted — the tuner itself never saw it).
    let full = entry.dataset();
    report.attach_regret(full.response());
    let regret = report.regret.expect("regret attached");
    assert!(
        regret <= 1.05,
        "active learning regret {regret:.4} exceeds 5% with {} evaluations over {space} configs",
        report.evaluations
    );
    // And it genuinely only measured what it was billed for.
    let measured = report.trajectory.last().map(|p| p.evaluations).unwrap_or(0);
    assert!(measured <= budget);
}

#[test]
fn active_learning_is_deterministic_under_a_fixed_seed() {
    let entry = stencil_grid();
    let options = ActiveLearnOptions {
        budget: 30,
        seed: 11,
        ..ActiveLearnOptions::default()
    };
    let a = active_learn(entry.workload(), &options).unwrap();
    let b = active_learn(entry.workload(), &options).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
fn proposals_are_in_space_and_measured_claims_match_the_oracle() {
    let workload = StencilWorkload::new(
        MachineDescription::blue_waters_xe6(),
        space_grid_only(),
        SERVE_NOISE_SEED,
    );
    let erased: &dyn DynWorkload = &workload;
    let rows = erased.feature_rows();
    let report = active_learn(
        erased,
        &ActiveLearnOptions {
            budget: 25,
            seed: 4,
            ..ActiveLearnOptions::default()
        },
    )
    .unwrap();
    assert!(report.best.oracle.is_some());
    for cfg in std::iter::once(&report.best).chain(&report.top) {
        assert!(cfg.index < rows.len());
        assert_eq!(cfg.features, rows[cfg.index]);
        assert!(cfg.predicted.is_finite());
        if let Some(t) = cfg.oracle {
            assert_eq!(t.to_bits(), erased.measure(cfg.index).to_bits());
        }
    }
}

#[test]
fn budget_smaller_than_initial_sample_still_works() {
    let entry = stencil_grid();
    // 3% of 729 would be ~22, but the budget is 5: the initial sample is
    // clamped to the budget and the loop still recommends something.
    let report = active_learn(
        entry.workload(),
        &ActiveLearnOptions {
            budget: 5,
            seed: 0,
            ..ActiveLearnOptions::default()
        },
    )
    .unwrap();
    assert_eq!(report.evaluations, 5);
    assert!(report.best.oracle.is_some());
}

#[test]
fn invalid_options_are_rejected() {
    let entry = stencil_grid();
    let w = entry.workload();
    for bad in [
        ActiveLearnOptions {
            budget: 0,
            ..ActiveLearnOptions::default()
        },
        ActiveLearnOptions {
            proposals_per_round: 0,
            ..ActiveLearnOptions::default()
        },
        ActiveLearnOptions {
            top_k: 0,
            ..ActiveLearnOptions::default()
        },
        ActiveLearnOptions {
            initial_fraction: 1.5,
            ..ActiveLearnOptions::default()
        },
    ] {
        assert!(active_learn(w, &bad).is_err());
    }
}
