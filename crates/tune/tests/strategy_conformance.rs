//! The strategy contract, checked for all four tuners against both a
//! runtime-registered catalog workload and the built-in stencil
//! scenarios:
//!
//! * **seeded determinism** — the same (workload, model, request) produces
//!   a byte-identical [`TuneReport`];
//! * **in-space proposals** — every configuration a report names is a
//!   member of the workload's parameter space, its features equal the
//!   canonical feature row, and every claimed oracle time matches the
//!   oracle;
//! * **budget accounting** — evaluations never exceed the budget and the
//!   trajectory has exactly one point per evaluation.

use lam_analytical::traits::{AnalyticalModel, ConstantModel};
use lam_core::catalog::{DynWorkload, WorkloadCatalog};
use lam_core::predict::PredictRow;
use lam_core::workload::Workload;
use lam_machine::arch::MachineDescription;
use lam_stencil::config::space_grid_threads;
use lam_stencil::workload::StencilWorkload;
use lam_tune::{all_strategies, by_name, TuneReport, TuneRequest, STRATEGY_NAMES};
use proptest::prelude::*;
use std::sync::Arc;

/// A synthetic factorial workload with a known interior optimum at
/// (a, b) = (6, 10): a 2-D bowl, so local search has a real lattice to
/// climb.
struct BowlWorkload {
    configs: Vec<(i64, i64)>,
}

impl BowlWorkload {
    fn new() -> Self {
        let mut configs = Vec::new();
        for a in (2..=12).step_by(2) {
            for b in (5..=40).step_by(5) {
                configs.push((a, b));
            }
        }
        Self { configs }
    }
}

impl Workload for BowlWorkload {
    type Config = (i64, i64);
    fn name(&self) -> &str {
        "tune-bowl"
    }
    fn feature_names(&self) -> Vec<String> {
        vec!["a".to_string(), "b".to_string()]
    }
    fn param_space(&self) -> &[(i64, i64)] {
        &self.configs
    }
    fn features(&self, cfg: &(i64, i64)) -> Vec<f64> {
        vec![cfg.0 as f64, cfg.1 as f64]
    }
    fn execution_time(&self, cfg: &(i64, i64)) -> f64 {
        let (a, b) = (cfg.0 as f64, cfg.1 as f64);
        1e-3 * (1.0 + (a - 6.0).powi(2) + 0.01 * (b - 10.0).powi(2))
    }
    fn problem_size(&self, cfg: &(i64, i64)) -> f64 {
        (cfg.0 * cfg.1) as f64
    }
    fn analytical_model(&self) -> Box<dyn AnalyticalModel> {
        Box::new(ConstantModel(1e-3))
    }
}

/// An imperfect-but-correlated "trained model": the truth plus a
/// deterministic structured wiggle, so model-guided strategies have
/// something useful (but not oracle-perfect) to rank with.
struct WiggleModel;

impl PredictRow for WiggleModel {
    fn predict_row(&self, x: &[f64]) -> f64 {
        let (a, b) = (x[0], x[1]);
        let truth = 1e-3 * (1.0 + (a - 6.0).powi(2) + 0.01 * (b - 10.0).powi(2));
        truth * (1.0 + 0.2 * ((a * 7.0 + b * 3.0).sin()))
    }
}

/// The bowl, registered **at runtime** in the global catalog — the same
/// path a user scenario takes.
fn bowl_entry() -> Arc<lam_core::catalog::WorkloadEntry> {
    let catalog = WorkloadCatalog::global();
    if catalog.lookup("tune-bowl").is_none() {
        // A racing registration from another test is fine: first wins.
        let _ = catalog.register_workload("tune-bowl", BowlWorkload::new());
    }
    catalog.lookup("tune-bowl").expect("registered above")
}

/// Check every claim a report makes against the workload itself.
fn assert_report_in_space(report: &TuneReport, workload: &dyn DynWorkload, request: &TuneRequest) {
    let rows = workload.feature_rows();
    assert_eq!(report.space_size, rows.len());
    assert_eq!(report.budget, request.budget);
    assert!(
        report.evaluations <= request.budget,
        "{}: spent {} of {}",
        report.strategy,
        report.evaluations,
        request.budget
    );
    assert_eq!(
        report.trajectory.len(),
        report.evaluations,
        "{}: one trajectory point per evaluation",
        report.strategy
    );
    assert!(report.top.len() <= request.top_k);
    assert!(!report.top.is_empty());

    let check = |cfg: &lam_tune::RankedConfig| {
        assert!(
            cfg.index < rows.len(),
            "{}: index in space",
            report.strategy
        );
        assert_eq!(
            cfg.features, rows[cfg.index],
            "{}: features",
            report.strategy
        );
        if let Some(t) = cfg.oracle {
            assert_eq!(
                t.to_bits(),
                workload.measure(cfg.index).to_bits(),
                "{}: claimed oracle time is the oracle's",
                report.strategy
            );
        }
    };
    check(&report.best);
    assert!(
        report.best.oracle.is_some(),
        "{}: the recommendation must be measured",
        report.strategy
    );
    for cfg in &report.top {
        check(cfg);
    }
    // The recommendation is the best measurement the trajectory ever saw.
    let last = report.trajectory.last().expect("non-empty trajectory");
    assert_eq!(last.incumbent, report.best.index);
    assert_eq!(
        Some(last.best_oracle),
        report.best.oracle,
        "{}: incumbent mismatch",
        report.strategy
    );
    for w in report.trajectory.windows(2) {
        assert!(
            w[1].best_oracle <= w[0].best_oracle,
            "{}: incumbent must never regress",
            report.strategy
        );
        assert_eq!(w[1].evaluations, w[0].evaluations + 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed ⇒ identical report; every proposal in-space — for every
    /// strategy, against the runtime-registered bowl.
    #[test]
    fn strategies_are_seeded_deterministic_and_in_space(
        seed in 0u64..1_000,
        budget in 1usize..40,
        top_k in 1usize..8,
    ) {
        let entry = bowl_entry();
        let workload = entry.workload();
        let request = TuneRequest { budget, top_k, seed };
        for tuner in all_strategies() {
            let a = tuner.tune(workload, &WiggleModel, &request).unwrap();
            let b = tuner.tune(workload, &WiggleModel, &request).unwrap();
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "{} not deterministic under seed {}",
                tuner.name(),
                seed
            );
            assert_report_in_space(&a, workload, &request);
            assert_eq!(a.strategy.as_str(), tuner.name());
        }
    }

    /// Distinct seeds may differ, but both stay valid (random search —
    /// the strategy most sensitive to the seed).
    #[test]
    fn random_search_seed_changes_are_still_in_space(seed in 0u64..1_000) {
        let entry = bowl_entry();
        let workload = entry.workload();
        let tuner = by_name("random").unwrap();
        for s in [seed, seed + 1] {
            let request = TuneRequest { budget: 12, top_k: 4, seed: s };
            let report = tuner.tune(workload, &WiggleModel, &request).unwrap();
            assert_report_in_space(&report, workload, &request);
        }
    }
}

#[test]
fn strategy_names_resolve_and_unknown_does_not() {
    for name in STRATEGY_NAMES {
        assert_eq!(by_name(name).unwrap().name(), name);
    }
    assert!(by_name("simulated-annealing").is_none());
    assert!(by_name("").is_none());
}

#[test]
fn model_guided_strategies_find_the_bowl_minimum_with_a_tiny_budget() {
    let entry = bowl_entry();
    let workload = entry.workload();
    let full = entry.dataset();
    let true_best = full
        .response()
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    // Model-guided strategies with budget 8 on a 48-config space must land
    // within 2× of the optimum; exhaustive (which trusts the model most)
    // must find it outright despite the 20% model wiggle.
    for name in ["exhaustive", "local", "halving"] {
        let tuner = by_name(name).unwrap();
        let mut report = tuner
            .tune(
                workload,
                &WiggleModel,
                &TuneRequest {
                    budget: 8,
                    top_k: 3,
                    seed: 7,
                },
            )
            .unwrap();
        report.attach_regret(full.response());
        let regret = report.regret.unwrap();
        assert!(regret < 2.0, "{name}: regret {regret}");
        if name == "exhaustive" {
            assert_eq!(report.best.oracle.unwrap(), true_best, "{name}");
        }
    }
}

/// The same contract holds on a built-in scenario with a genuinely
/// trained model: the paper's threaded stencil space under its own
/// hybrid.
#[test]
fn strategies_hold_on_a_builtin_stencil_space_with_a_trained_hybrid() {
    use lam_core::hybrid::HybridModel;
    use lam_ml::forest::ExtraTreesRegressor;
    use lam_ml::model::Regressor;
    use lam_ml::sampling::train_test_split_fraction;
    use lam_ml::tree::TreeParams;

    let workload = StencilWorkload::new(
        MachineDescription::blue_waters_xe6(),
        space_grid_threads(),
        lam_core::catalog::SERVE_NOISE_SEED,
    );
    let erased: &dyn DynWorkload = &workload;
    let data = erased.generate_dataset();
    let (train, _) = train_test_split_fraction(&data, 0.10, 5);
    let mut hybrid = HybridModel::new(
        erased.analytical_model(),
        Box::new(ExtraTreesRegressor::with_params(
            30,
            TreeParams::default(),
            5,
        )),
        erased.hybrid_config(),
    );
    hybrid.fit(&train).expect("fit hybrid");
    let model: &dyn PredictRow = &hybrid;

    let request = TuneRequest {
        budget: 24,
        top_k: 5,
        seed: 3,
    };
    for tuner in all_strategies() {
        let a = tuner.tune(erased, model, &request).unwrap();
        let b = tuner.tune(erased, model, &request).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "{} not deterministic on stencil-grid-threads",
            tuner.name()
        );
        assert_report_in_space(&a, erased, &request);
        let mut report = a;
        report.attach_regret(data.response());
        assert!(
            report.regret.unwrap() < 3.0,
            "{}: regret {} with 24/{} budget",
            tuner.name(),
            report.regret.unwrap(),
            data.len()
        );
    }
}
