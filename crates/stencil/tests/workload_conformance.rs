//! The shared `lam-core` Workload conformance suite, run against every
//! stencil configuration space.

use lam_core::workload::conformance;
use lam_machine::arch::MachineDescription;
use lam_stencil::config::{space_grid_blocking, space_grid_only, space_grid_threads, StencilSpace};
use lam_stencil::workload::StencilWorkload;

fn check(space: fn() -> StencilSpace) {
    let machine = MachineDescription::blue_waters_xe6();
    let make = || StencilWorkload::new(machine.clone(), space(), 42);
    let noise_free = make().without_noise();
    conformance::assert_workload_conformance(make, &noise_free);
}

#[test]
fn grid_only_space_conforms() {
    check(space_grid_only);
}

#[test]
fn grid_blocking_space_conforms() {
    check(space_grid_blocking);
}

#[test]
fn grid_threads_space_conforms() {
    check(space_grid_threads);
}
