//! Property-based tests: every tuned stencil variant computes exactly the
//! naive result, and the oracle behaves like a time.

use lam_machine::arch::MachineDescription;
use lam_stencil::config::StencilConfig;
use lam_stencil::grid::Grid3;
use lam_stencil::kernel::{step_blocked, step_naive, step_threaded, Coefficients};
use lam_stencil::oracle::StencilOracle;
use proptest::prelude::*;

fn grid_with_pattern(nx: usize, ny: usize, nz: usize, salt: u64) -> Grid3 {
    let mut g = Grid3::new(nx, ny, nz, 1);
    g.fill_with(|x, y, z| {
        let h = (x as u64)
            .wrapping_mul(0x9E3779B9)
            .wrapping_add((y as u64).wrapping_mul(0x85EBCA6B))
            .wrapping_add((z as u64).wrapping_mul(0xC2B2AE35))
            .wrapping_add(salt);
        ((h % 17) as f64) - 8.0
    });
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked + unrolled kernel ≡ naive kernel, bit for bit, for any
    /// block shape and unroll factor.
    #[test]
    fn blocked_equals_naive(
        nx in 1usize..14,
        ny in 1usize..14,
        nz in 1usize..14,
        bi in 1usize..16,
        bj in 1usize..16,
        bk in 1usize..16,
        unroll in 1usize..=8,
        salt in 0u64..100,
    ) {
        let src = grid_with_pattern(nx, ny, nz, salt);
        let mut expect = src.clone();
        step_naive(&src, &mut expect, Coefficients::default());
        let cfg = StencilConfig {
            i: nx,
            j: ny,
            k: nz,
            bi,
            bj,
            bk,
            unroll,
            threads: 1,
        }
        .normalized();
        let mut got = src.clone();
        step_blocked(&src, &mut got, Coefficients::default(), &cfg);
        prop_assert_eq!(got.data(), expect.data());
    }

    /// Threaded kernel ≡ naive kernel for any thread count.
    #[test]
    fn threaded_equals_naive(
        nx in 1usize..12,
        ny in 1usize..12,
        nz in 1usize..12,
        threads in 1usize..=8,
        salt in 0u64..100,
    ) {
        let src = grid_with_pattern(nx, ny, nz, salt);
        let mut expect = src.clone();
        step_naive(&src, &mut expect, Coefficients::default());
        let cfg = StencilConfig {
            threads,
            ..StencilConfig::unblocked(nx, ny, nz)
        };
        let mut got = src.clone();
        step_threaded(&src, &mut got, Coefficients::default(), &cfg);
        prop_assert_eq!(got.data(), expect.data());
    }

    /// Oracle times are positive, finite, and deterministic for arbitrary
    /// valid configurations.
    #[test]
    fn oracle_well_behaved(
        j in 8usize..200,
        k in 8usize..200,
        bj in 1usize..200,
        bk in 1usize..200,
        unroll in 1usize..=8,
        threads in 1usize..=16,
    ) {
        let oracle = StencilOracle::new(MachineDescription::blue_waters_xe6(), 5);
        let cfg = StencilConfig {
            i: 1,
            j,
            k,
            bi: 1,
            bj,
            bk,
            unroll,
            threads,
        }
        .normalized();
        let t = oracle.execution_time(&cfg);
        prop_assert!(t.is_finite() && t > 0.0);
        prop_assert_eq!(t, oracle.execution_time(&cfg));
    }

    /// More grid points never makes the (noise-free) serial oracle faster.
    #[test]
    fn oracle_monotone_in_volume(j in 16usize..100, k in 16usize..100) {
        let oracle = StencilOracle::new(MachineDescription::blue_waters_xe6(), 5).without_noise();
        let small = oracle.execution_time(&StencilConfig::unblocked(1, j, k));
        let bigger = oracle.execution_time(&StencilConfig::unblocked(1, j * 2, k));
        prop_assert!(bigger > small);
    }
}
