//! Runnable 7-point 3-D stencil kernels: naive, blocked, unrolled, and
//! multithreaded — the code the PATUS DSL would generate for the paper's
//! first application.
//!
//! The update is the classical Jacobi form from the paper's pseudocode:
//!
//! ```text
//! x'[i,j,k] = C0*x[i,j,k] + C1*(x[i±1,j,k] + x[i,j±1,k] + x[i,j,k±1])
//! ```

use crate::config::StencilConfig;
use crate::grid::Grid3;
use rayon::prelude::*;

/// Spatial discretization coefficients `(C0, C1)`; the classic heat-equation
/// Jacobi step uses `C0 = 1 - 6λ`, `C1 = λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coefficients {
    /// Weight of the central point.
    pub c0: f64,
    /// Weight of each of the six neighbours.
    pub c1: f64,
}

impl Default for Coefficients {
    fn default() -> Self {
        // λ = 0.1 → stable heat-equation step.
        Self { c0: 0.4, c1: 0.1 }
    }
}

/// One naive sweep: `dst` interior ← stencil of `src`.
pub fn step_naive(src: &Grid3, dst: &mut Grid3, coef: Coefficients) {
    assert_grids_match(src, dst);
    let (nx, ny, nz, g) = (src.nx, src.ny, src.nz, src.ghost);
    let xx = src.xx();
    let yy = src.yy();
    let s = src.data();
    let d = dst.data_mut();
    for z in g..(nz + g) {
        for y in g..(ny + g) {
            let row = (z * yy + y) * xx;
            let up = (z * yy + y + 1) * xx;
            let down = (z * yy + y - 1) * xx;
            let front = ((z + 1) * yy + y) * xx;
            let back = ((z - 1) * yy + y) * xx;
            for x in g..(nx + g) {
                d[row + x] = coef.c0 * s[row + x]
                    + coef.c1
                        * (s[row + x - 1]
                            + s[row + x + 1]
                            + s[down + x]
                            + s[up + x]
                            + s[back + x]
                            + s[front + x]);
            }
        }
    }
}

/// One blocked sweep with loop blocking `bi×bj×bk` and inner-loop unrolling
/// by `unroll` (1–8). Results are identical to [`step_naive`].
pub fn step_blocked(src: &Grid3, dst: &mut Grid3, coef: Coefficients, cfg: &StencilConfig) {
    assert_grids_match(src, dst);
    let cfg = cfg.normalized();
    let (nx, ny, nz, g) = (src.nx, src.ny, src.nz, src.ghost);
    let xx = src.xx();
    let yy = src.yy();
    let s = src.data();
    let d = dst.data_mut();
    let (bi, bj, bk, u) = (cfg.bi, cfg.bj, cfg.bk, cfg.unroll);

    let mut z0 = g;
    while z0 < nz + g {
        let z1 = (z0 + bk).min(nz + g);
        let mut y0 = g;
        while y0 < ny + g {
            let y1 = (y0 + bj).min(ny + g);
            let mut x0 = g;
            while x0 < nx + g {
                let x1 = (x0 + bi).min(nx + g);
                for z in z0..z1 {
                    for y in y0..y1 {
                        let row = (z * yy + y) * xx;
                        let up = (z * yy + y + 1) * xx;
                        let down = (z * yy + y - 1) * xx;
                        let front = ((z + 1) * yy + y) * xx;
                        let back = ((z - 1) * yy + y) * xx;
                        // Unrolled main body, scalar remainder.
                        let mut x = x0;
                        while x + u <= x1 {
                            // The compiler fully unrolls this fixed-bound
                            // inner loop for each constant `u` at runtime —
                            // functionally identical, and `u` still changes
                            // codegen and thus runtime, like PATUS.
                            for dx in 0..u {
                                let xi = x + dx;
                                d[row + xi] = coef.c0 * s[row + xi]
                                    + coef.c1
                                        * (s[row + xi - 1]
                                            + s[row + xi + 1]
                                            + s[down + xi]
                                            + s[up + xi]
                                            + s[back + xi]
                                            + s[front + xi]);
                            }
                            x += u;
                        }
                        while x < x1 {
                            d[row + x] = coef.c0 * s[row + x]
                                + coef.c1
                                    * (s[row + x - 1]
                                        + s[row + x + 1]
                                        + s[down + x]
                                        + s[up + x]
                                        + s[back + x]
                                        + s[front + x]);
                            x += 1;
                        }
                    }
                }
                x0 = x1;
            }
            y0 = y1;
        }
        z0 = z1;
    }
}

/// One multithreaded sweep: z-planes are distributed over `cfg.threads`
/// Rayon workers; each worker runs the blocked kernel on its slab.
pub fn step_threaded(src: &Grid3, dst: &mut Grid3, coef: Coefficients, cfg: &StencilConfig) {
    assert_grids_match(src, dst);
    let cfg = cfg.normalized();
    if cfg.threads <= 1 || src.nz == 1 {
        step_blocked(src, dst, coef, &cfg);
        return;
    }
    let (nx, ny, nz, g) = (src.nx, src.ny, src.nz, src.ghost);
    let xx = src.xx();
    let yy = src.yy();
    let plane = xx * yy;
    let s = src.data();
    let d = dst.data_mut();

    // Split the destination interior into contiguous z-slabs. Each slab of
    // the flat buffer is disjoint, so `par_chunks_mut` keeps this safe.
    // Slab boundaries are plane-aligned: skip the ghost planes first.
    let interior = &mut d[g * plane..(nz + g) * plane];
    let slab_planes = nz.div_ceil(cfg.threads);
    interior
        .par_chunks_mut(slab_planes * plane)
        .enumerate()
        .for_each(|(slab, chunk)| {
            let z_lo = g + slab * slab_planes; // padded z of first plane
            let planes_here = chunk.len() / plane;
            for zp in 0..planes_here {
                let z = z_lo + zp;
                for y in g..(ny + g) {
                    let row = (z * yy + y) * xx;
                    let up = (z * yy + y + 1) * xx;
                    let down = (z * yy + y - 1) * xx;
                    let front = ((z + 1) * yy + y) * xx;
                    let back = ((z - 1) * yy + y) * xx;
                    let out_row = (zp * yy + y) * xx;
                    for x in g..(nx + g) {
                        chunk[out_row + x] = coef.c0 * s[row + x]
                            + coef.c1
                                * (s[row + x - 1]
                                    + s[row + x + 1]
                                    + s[down + x]
                                    + s[up + x]
                                    + s[back + x]
                                    + s[front + x]);
                    }
                }
            }
        });
}

/// Run `timesteps` sweeps with buffer swapping; returns the final grid.
pub fn run(initial: &Grid3, coef: Coefficients, cfg: &StencilConfig, timesteps: usize) -> Grid3 {
    let mut a = initial.clone();
    let mut b = initial.clone();
    for _ in 0..timesteps {
        step_threaded(&a, &mut b, coef, cfg);
        std::mem::swap(&mut a, &mut b);
    }
    a
}

/// Flops per interior point of the 7-point update (2 multiplies + 6 adds).
pub const FLOPS_PER_POINT: f64 = 8.0;

fn assert_grids_match(src: &Grid3, dst: &Grid3) {
    assert_eq!(
        (src.nx, src.ny, src.nz, src.ghost),
        (dst.nx, dst.ny, dst.nz, dst.ghost),
        "source and destination grids must have identical shapes"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init(nx: usize, ny: usize, nz: usize) -> Grid3 {
        let mut g = Grid3::new(nx, ny, nz, 1);
        g.fill_with(|x, y, z| ((x * 31 + y * 17 + z * 7) % 13) as f64 - 6.0);
        g
    }

    #[test]
    fn naive_conserves_constant_field_interiorly() {
        // With c0 + 6*c1 = 1, a constant field stays constant away from the
        // boundary (ghosts are zero, so only interior-of-interior checked).
        let mut g = Grid3::new(8, 8, 8, 1);
        g.fill_with(|_, _, _| 2.0);
        let mut out = g.clone();
        step_naive(&g, &mut out, Coefficients::default());
        for z in 1..7 {
            for y in 1..7 {
                for x in 1..7 {
                    assert!((out.get(x, y, z) - 2.0).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn blocked_matches_naive_for_various_blocks() {
        let src = init(12, 10, 9);
        let mut expect = src.clone();
        step_naive(&src, &mut expect, Coefficients::default());
        for (bi, bj, bk, u) in [
            (1, 1, 1, 1),
            (4, 4, 4, 1),
            (12, 10, 9, 1),
            (5, 3, 2, 3),
            (12, 1, 9, 8),
        ] {
            let cfg = StencilConfig {
                i: 12,
                j: 10,
                k: 9,
                bi,
                bj,
                bk,
                unroll: u,
                threads: 1,
            };
            let mut got = src.clone();
            step_blocked(&src, &mut got, Coefficients::default(), &cfg);
            assert_eq!(
                got.data(),
                expect.data(),
                "mismatch for blocks ({bi},{bj},{bk}) unroll {u}"
            );
        }
    }

    #[test]
    fn threaded_matches_naive() {
        let src = init(16, 14, 12);
        let mut expect = src.clone();
        step_naive(&src, &mut expect, Coefficients::default());
        for t in [2, 3, 4, 8] {
            let cfg = StencilConfig {
                threads: t,
                ..StencilConfig::unblocked(16, 14, 12)
            };
            let mut got = src.clone();
            step_threaded(&src, &mut got, Coefficients::default(), &cfg);
            assert_eq!(got.data(), expect.data(), "mismatch for {t} threads");
        }
    }

    #[test]
    fn threaded_more_threads_than_planes() {
        let src = init(8, 8, 3);
        let mut expect = src.clone();
        step_naive(&src, &mut expect, Coefficients::default());
        let cfg = StencilConfig {
            threads: 8,
            ..StencilConfig::unblocked(8, 8, 3)
        };
        let mut got = src.clone();
        step_threaded(&src, &mut got, Coefficients::default(), &cfg);
        assert_eq!(got.data(), expect.data());
    }

    #[test]
    fn multi_step_diffusion_decays() {
        // Heat equation with zero boundary: energy decays monotonically.
        let mut src = Grid3::new(10, 10, 10, 1);
        src.fill_with(|x, y, z| if (x, y, z) == (5, 5, 5) { 100.0 } else { 0.0 });
        let out = run(
            &src,
            Coefficients::default(),
            &StencilConfig::unblocked(10, 10, 10),
            5,
        );
        let total = out.interior_sum();
        assert!(total > 0.0 && total < 100.0, "sum {total}");
        // Peak spreads out.
        assert!(out.get(5, 5, 5) < 100.0 * 0.5);
        assert!(out.get(4, 5, 5) > 0.0);
    }

    #[test]
    fn planar_grid_k_equals_one() {
        let src = init(16, 16, 1);
        let mut expect = src.clone();
        step_naive(&src, &mut expect, Coefficients::default());
        let cfg = StencilConfig {
            threads: 4,
            ..StencilConfig::unblocked(16, 16, 1)
        };
        let mut got = src.clone();
        step_threaded(&src, &mut got, Coefficients::default(), &cfg);
        assert_eq!(got.data(), expect.data());
    }

    #[test]
    #[should_panic(expected = "identical shapes")]
    fn mismatched_grids_panic() {
        let a = Grid3::new(4, 4, 4, 1);
        let mut b = Grid3::new(5, 4, 4, 1);
        step_naive(&a, &mut b, Coefficients::default());
    }
}
