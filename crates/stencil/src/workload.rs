//! [`Workload`] implementation for the stencil application: one value ties
//! together a configuration space, the simulated-measurement oracle, and
//! the matching §IV analytical model.

use crate::config::{StencilConfig, StencilFeatures, StencilSpace};
use crate::oracle::StencilOracle;
use lam_analytical::stencil::{BlockedStencilModel, StencilAnalyticalModel};
use lam_analytical::traits::AnalyticalModel;
use lam_core::catalog::{CatalogError, WorkloadCatalog, SERVE_NOISE_SEED};
use lam_core::workload::Workload;
use lam_machine::arch::MachineDescription;

/// The stencil scenario: a [`StencilSpace`] evaluated by a
/// [`StencilOracle`] on one machine.
#[derive(Debug, Clone)]
pub struct StencilWorkload {
    oracle: StencilOracle,
    space: StencilSpace,
}

impl StencilWorkload {
    /// Build the scenario on a machine with the given noise seed.
    pub fn new(machine: MachineDescription, space: StencilSpace, noise_seed: u64) -> Self {
        Self {
            oracle: StencilOracle::new(machine, noise_seed),
            space,
        }
    }

    /// Disable measurement noise (model validation, conformance tests).
    pub fn without_noise(mut self) -> Self {
        self.oracle = self.oracle.without_noise();
        self
    }

    /// The underlying oracle.
    pub fn oracle(&self) -> &StencilOracle {
        &self.oracle
    }

    /// The configuration space.
    pub fn space(&self) -> &StencilSpace {
        &self.space
    }
}

impl Workload for StencilWorkload {
    type Config = StencilConfig;

    fn name(&self) -> &str {
        self.space.name
    }

    fn feature_names(&self) -> Vec<String> {
        self.space.feature_names()
    }

    fn param_space(&self) -> &[StencilConfig] {
        self.space.configs()
    }

    fn features(&self, cfg: &StencilConfig) -> Vec<f64> {
        self.space.features.project(cfg)
    }

    fn execution_time(&self, cfg: &StencilConfig) -> f64 {
        self.oracle.execution_time(cfg)
    }

    fn problem_size(&self, cfg: &StencilConfig) -> f64 {
        cfg.points() as f64
    }

    /// The analytical model the paper pairs with this feature layout: the
    /// blocking-aware model (eq 15) when block sizes are features, the
    /// serial cache-miss model (eqs 3–7) otherwise — including the
    /// threaded space, where the paper deliberately stacks a model that
    /// "does not capture the parallelism".
    fn analytical_model(&self) -> Box<dyn AnalyticalModel> {
        let machine = self.oracle.machine().clone();
        let timesteps = self.oracle.timesteps;
        match self.space.features {
            StencilFeatures::GridAndBlocking => {
                Box::new(BlockedStencilModel::new(machine, timesteps))
            }
            StencilFeatures::GridOnly | StencilFeatures::GridAndThreads => {
                Box::new(StencilAnalyticalModel::new(machine, timesteps))
            }
        }
    }
}

/// Register the stencil scenarios' servable descriptors — the three
/// paper spaces under their stable names (`stencil-grid`,
/// `stencil-grid-blocking`, `stencil-grid-threads`) — on the Blue Waters
/// description with the shared [`SERVE_NOISE_SEED`].
pub fn register_servable(catalog: &WorkloadCatalog) -> Result<(), CatalogError> {
    for space in [
        crate::config::space_grid_only(),
        crate::config::space_grid_blocking(),
        crate::config::space_grid_threads(),
    ] {
        let name = space.name;
        match catalog.register_workload(
            name,
            StencilWorkload::new(
                MachineDescription::blue_waters_xe6(),
                space,
                SERVE_NOISE_SEED,
            ),
        ) {
            // Idempotent per name: an earlier registration (a repeat call,
            // or a user claiming one name first) wins; the *other* names
            // still register.
            Ok(_) | Err(CatalogError::Duplicate(_)) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{space_grid_blocking, space_grid_only, space_grid_threads};

    fn workload(space: StencilSpace) -> StencilWorkload {
        StencilWorkload::new(MachineDescription::blue_waters_xe6(), space, 7)
    }

    #[test]
    fn dataset_generation_matches_spaces() {
        for space in [
            space_grid_only(),
            space_grid_blocking(),
            space_grid_threads(),
        ] {
            let w = workload(space);
            let d = w.generate_dataset();
            assert_eq!(d.len(), w.space().len(), "space {}", w.name());
            assert_eq!(d.n_features(), w.feature_names().len());
            d.validate_finite().unwrap();
            assert!(d.response().iter().all(|&y| y > 0.0));
        }
    }

    #[test]
    fn dataset_deterministic_across_calls() {
        let w = workload(space_grid_only());
        assert_eq!(w.generate_dataset(), w.generate_dataset());
    }

    #[test]
    fn analytical_model_tracks_feature_layout() {
        let grid = workload(space_grid_only());
        let blocking = workload(space_grid_blocking());
        let threads = workload(space_grid_threads());
        // Serial model takes (I, J, K); blocked model takes
        // (I, J, K, bi, bj, bk). Predictions must be finite and positive
        // on each space's own feature layout.
        for w in [&grid, &threads] {
            let am = w.analytical_model();
            let x = w.features(&w.param_space()[0]);
            assert!(am.predict(&x).is_finite());
        }
        let am = blocking.analytical_model();
        let x = blocking.features(&blocking.param_space()[0]);
        assert!(am.predict(&x) > 0.0);
    }

    #[test]
    fn problem_size_is_grid_points() {
        let w = workload(space_grid_only());
        let c = StencilConfig::unblocked(128, 144, 160);
        assert_eq!(w.problem_size(&c), (128 * 144 * 160) as f64);
    }
}
