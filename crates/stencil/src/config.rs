//! Stencil configurations and the paper's dataset spaces.
//!
//! The full PATUS modeling vector is `X = (I, J, K, bi, bj, bk, u, t)`;
//! each evaluation figure uses a projection of it:
//!
//! * Fig 3A / Fig 6 — `X = (I, J, K, bi, bj, bk)`, grids `1×16×16 … 1×128×128`
//!   (16-point stride), blocks `1×1×1 … I×J×K`;
//! * Fig 5 — `X = (I, J, K)`, grids `128³ … 256³` (16-point stride);
//! * Fig 7 — `X = (I, J, K, t)`, grids `128×128×1 … 176×176×1`, `t = 1…8`.

use lam_data::space::block_ladder;
use lam_data::ParamRange;
use serde::{Deserialize, Serialize};

/// A concrete stencil run configuration (the full modeling vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StencilConfig {
    /// Interior grid points in x.
    pub i: usize,
    /// Interior grid points in y.
    pub j: usize,
    /// Interior grid points in z.
    pub k: usize,
    /// Block size in x (`0 < bi <= i`).
    pub bi: usize,
    /// Block size in y.
    pub bj: usize,
    /// Block size in z.
    pub bk: usize,
    /// Inner-loop unroll factor (1 = no unrolling; paper allows 0–8, where
    /// 0 means "no unrolling", which we normalize to 1).
    pub unroll: usize,
    /// Worker threads.
    pub threads: usize,
}

impl StencilConfig {
    /// Unblocked, serial configuration for a grid.
    pub fn unblocked(i: usize, j: usize, k: usize) -> Self {
        Self {
            i,
            j,
            k,
            bi: i,
            bj: j,
            bk: k,
            unroll: 1,
            threads: 1,
        }
    }

    /// Total interior points.
    pub fn points(&self) -> usize {
        self.i * self.j * self.k
    }

    /// Clamp block sizes into `[1, dim]` and unroll/threads into sane
    /// ranges; returns the normalized configuration.
    pub fn normalized(mut self) -> Self {
        self.bi = self.bi.clamp(1, self.i);
        self.bj = self.bj.clamp(1, self.j);
        self.bk = self.bk.clamp(1, self.k);
        self.unroll = self.unroll.clamp(1, 8);
        self.threads = self.threads.max(1);
        self
    }

    /// Validity check (block sizes within dims, nonzero everything).
    pub fn is_valid(&self) -> bool {
        self.i > 0
            && self.j > 0
            && self.k > 0
            && (1..=self.i).contains(&self.bi)
            && (1..=self.j).contains(&self.bj)
            && (1..=self.k).contains(&self.bk)
            && (1..=8).contains(&self.unroll)
            && self.threads >= 1
    }

    /// Stable hash of the configuration for the noise model.
    pub fn hash64(&self) -> u64 {
        lam_machine::noise::hash_config(&[
            self.i as u64,
            self.j as u64,
            self.k as u64,
            self.bi as u64,
            self.bj as u64,
            self.bk as u64,
            self.unroll as u64,
            self.threads as u64,
        ])
    }
}

/// Which projection of the modeling vector a dataset exposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StencilFeatures {
    /// `(I, J, K)` — Fig 5.
    GridOnly,
    /// `(I, J, K, bi, bj, bk)` — Fig 3A and Fig 6.
    GridAndBlocking,
    /// `(I, J, K, t)` — Fig 7.
    GridAndThreads,
}

impl StencilFeatures {
    /// Feature-column names for this projection.
    pub fn names(self) -> Vec<String> {
        match self {
            StencilFeatures::GridOnly => vec!["I".into(), "J".into(), "K".into()],
            StencilFeatures::GridAndBlocking => vec![
                "I".into(),
                "J".into(),
                "K".into(),
                "bi".into(),
                "bj".into(),
                "bk".into(),
            ],
            StencilFeatures::GridAndThreads => {
                vec!["I".into(), "J".into(), "K".into(), "t".into()]
            }
        }
    }

    /// Project a configuration onto this feature vector.
    pub fn project(self, c: &StencilConfig) -> Vec<f64> {
        match self {
            StencilFeatures::GridOnly => vec![c.i as f64, c.j as f64, c.k as f64],
            StencilFeatures::GridAndBlocking => vec![
                c.i as f64,
                c.j as f64,
                c.k as f64,
                c.bi as f64,
                c.bj as f64,
                c.bk as f64,
            ],
            StencilFeatures::GridAndThreads => {
                vec![c.i as f64, c.j as f64, c.k as f64, c.threads as f64]
            }
        }
    }
}

/// An enumerable stencil configuration space with an associated feature
/// projection.
#[derive(Debug, Clone)]
pub struct StencilSpace {
    /// Dataset label used in reports.
    pub name: &'static str,
    /// Feature projection.
    pub features: StencilFeatures,
    configs: Vec<StencilConfig>,
}

impl StencilSpace {
    /// All configurations in the space.
    pub fn configs(&self) -> &[StencilConfig] {
        &self.configs
    }

    /// Number of configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// `true` when empty (never for the paper spaces).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Feature names.
    pub fn feature_names(&self) -> Vec<String> {
        self.features.names()
    }
}

/// Fig 5 space: grid sizes only, `128³ … 256³` with a 16-point stride
/// (9 values per axis → 729 configurations).
pub fn space_grid_only() -> StencilSpace {
    let axis = ParamRange::new(128, 256, 16).values();
    let mut configs = Vec::new();
    for &i in &axis {
        for &j in &axis {
            for &k in &axis {
                configs.push(StencilConfig::unblocked(i as usize, j as usize, k as usize));
            }
        }
    }
    StencilSpace {
        name: "stencil-grid",
        features: StencilFeatures::GridOnly,
        configs,
    }
}

/// Fig 3A / Fig 6 space: thin grids `1×16×16 … 1×128×128` (16-point stride)
/// crossed with loop blocks `1×1×1 … I×J×K` drawn from a geometric ladder
/// per axis (the paper's full cross product is unbounded; the ladder keeps
/// every decade of block shapes while bounding the enumeration).
pub fn space_grid_blocking() -> StencilSpace {
    let axis = ParamRange::new(16, 128, 16).values();
    let mut configs = Vec::new();
    for &j in &axis {
        for &k in &axis {
            let (i, j, k) = (1usize, j as usize, k as usize);
            for &bj in &block_ladder(j as u64) {
                for &bk in &block_ladder(k as u64) {
                    configs.push(
                        StencilConfig {
                            i,
                            j,
                            k,
                            bi: 1,
                            bj: bj as usize,
                            bk: bk as usize,
                            unroll: 1,
                            threads: 1,
                        }
                        .normalized(),
                    );
                }
            }
        }
    }
    StencilSpace {
        name: "stencil-grid-blocking",
        features: StencilFeatures::GridAndBlocking,
        configs,
    }
}

/// Fig 7 space: planar grids `128×128×1 … 176×176×1` with `t = 1…8`
/// threads. The paper's 16-point stride gives 4 values per axis; we use an
/// 8-point stride (7 values) so the 1% training window still contains a few
/// samples — noted in EXPERIMENTS.md.
pub fn space_grid_threads() -> StencilSpace {
    let axis = ParamRange::new(128, 176, 8).values();
    let mut configs = Vec::new();
    for &i in &axis {
        for &j in &axis {
            for t in 1..=8usize {
                configs.push(StencilConfig {
                    i: i as usize,
                    j: j as usize,
                    k: 1,
                    bi: i as usize,
                    bj: j as usize,
                    bk: 1,
                    unroll: 1,
                    threads: t,
                });
            }
        }
    }
    StencilSpace {
        name: "stencil-grid-threads",
        features: StencilFeatures::GridAndThreads,
        configs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unblocked_is_valid() {
        let c = StencilConfig::unblocked(16, 32, 64);
        assert!(c.is_valid());
        assert_eq!(c.points(), 16 * 32 * 64);
        assert_eq!(c.bi, 16);
    }

    #[test]
    fn normalization_clamps() {
        let c = StencilConfig {
            i: 8,
            j: 8,
            k: 8,
            bi: 100,
            bj: 0,
            bk: 3,
            unroll: 0,
            threads: 0,
        }
        .normalized();
        assert!(c.is_valid());
        assert_eq!(c.bi, 8);
        assert_eq!(c.bj, 1);
        assert_eq!(c.unroll, 1);
        assert_eq!(c.threads, 1);
    }

    #[test]
    fn hash_distinguishes_configs() {
        let a = StencilConfig::unblocked(16, 16, 16);
        let mut b = a;
        b.bj = 8;
        assert_ne!(a.hash64(), b.hash64());
        assert_eq!(a.hash64(), a.hash64());
    }

    #[test]
    fn grid_only_space_is_729() {
        let s = space_grid_only();
        assert_eq!(s.len(), 729);
        assert!(s.configs().iter().all(|c| c.is_valid()));
        assert_eq!(s.feature_names().len(), 3);
        let c = &s.configs()[0];
        assert_eq!(c.i, 128);
        let c = s.configs().last().unwrap();
        assert_eq!((c.i, c.j, c.k), (256, 256, 256));
    }

    #[test]
    fn blocking_space_shape() {
        let s = space_grid_blocking();
        // 8 J values x 8 K values, ladder(16..128) gives 5..8 values each.
        assert!(s.len() > 1500, "len {}", s.len());
        assert!(s.configs().iter().all(|c| c.is_valid()));
        assert!(s.configs().iter().all(|c| c.i == 1 && c.bi == 1));
        assert_eq!(s.feature_names().len(), 6);
    }

    #[test]
    fn threads_space_shape() {
        let s = space_grid_threads();
        assert_eq!(s.len(), 7 * 7 * 8);
        assert!(s.configs().iter().all(|c| c.is_valid()));
        assert!(s.configs().iter().any(|c| c.threads == 8));
        assert_eq!(s.feature_names(), vec!["I", "J", "K", "t"]);
    }

    #[test]
    fn projection_matches_features() {
        let c = StencilConfig {
            i: 10,
            j: 20,
            k: 30,
            bi: 2,
            bj: 4,
            bk: 8,
            unroll: 2,
            threads: 3,
        };
        assert_eq!(
            StencilFeatures::GridOnly.project(&c),
            vec![10.0, 20.0, 30.0]
        );
        assert_eq!(
            StencilFeatures::GridAndBlocking.project(&c),
            vec![10.0, 20.0, 30.0, 2.0, 4.0, 8.0]
        );
        assert_eq!(
            StencilFeatures::GridAndThreads.project(&c),
            vec![10.0, 20.0, 30.0, 3.0]
        );
    }
}
