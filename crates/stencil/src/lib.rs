//! # lam-stencil
//!
//! The first application of the paper: a 7-point 3-D stencil in the style of
//! the PATUS-generated code used by Ibeid et al. — with the same tuning
//! knobs (grid size `I×J×K`, loop blocking `bi×bj×bk`, inner-loop unrolling
//! `u`, threads `t`) forming the modeling vector
//! `X = (I, J, K, bi, bj, bk, u, t)`.
//!
//! Two execution paths are provided:
//!
//! * [`kernel`] — a *real, runnable* stencil (naive, blocked, unrolled,
//!   multithreaded) with wall-clock measurement in [`measure`]; and
//! * [`oracle`] — a *simulated* execution on a [`lam_machine`] description,
//!   which serves as the reproducible ground truth for every experiment
//!   (the paper measured on Blue Waters; see DESIGN.md §1 for the
//!   substitution argument).

pub mod config;
pub mod grid;
pub mod kernel;
pub mod kernel27;
pub mod measure;
pub mod oracle;
pub mod trace;
pub mod workload;

pub use workload::StencilWorkload;

pub use config::{StencilConfig, StencilSpace};
pub use grid::Grid3;
pub use oracle::StencilOracle;
