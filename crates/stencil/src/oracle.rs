//! Simulated-execution oracle: the reproducible stand-in for "measured on
//! Blue Waters" execution times.
//!
//! The oracle computes a *detailed* per-configuration execution time on a
//! [`MachineDescription`]. It shares the coarse structure of the paper's
//! analytical model (per-plane traffic through the cache hierarchy,
//! `max(Tflops, Tmem)`) but layers on the non-idealities real hardware
//! exhibits and the §IV model ignores:
//!
//! * set-conflict capacity loss dependent on the blocked plane stride,
//! * hardware-prefetcher efficiency driven by the inner streak length `bi`,
//! * per-block and per-iteration loop overheads (including unroll effects),
//! * TLB pressure for large strided plane walks,
//! * thread scaling with bandwidth saturation and FPU-module sharing,
//! * multiplicative lognormal measurement noise.
//!
//! Those terms are exactly what makes the untuned analytical model land at
//! ~40% MAPE on the blocking dataset (paper §VII-A) while remaining
//! correlated with the truth — the regime hybrid stacking exploits.

use crate::config::{StencilConfig, StencilSpace};
use crate::kernel::FLOPS_PER_POINT;
use lam_data::Dataset;
use lam_machine::arch::MachineDescription;
use lam_machine::contention::ThreadModel;
use lam_machine::noise::NoiseModel;

/// Stencil ground-truth time model over a machine.
#[derive(Debug, Clone)]
pub struct StencilOracle {
    machine: MachineDescription,
    thread_model: ThreadModel,
    noise: NoiseModel,
    /// Number of Jacobi timesteps the modeled run executes.
    pub timesteps: usize,
}

impl StencilOracle {
    /// Oracle with default thread model and 3% measurement noise.
    pub fn new(machine: MachineDescription, noise_seed: u64) -> Self {
        Self {
            machine,
            thread_model: ThreadModel::default(),
            noise: NoiseModel::new(0.03, noise_seed),
            timesteps: 4,
        }
    }

    /// Disable measurement noise (for model-validation tests).
    pub fn without_noise(mut self) -> Self {
        self.noise = NoiseModel::none();
        self
    }

    /// Override the thread-contention model.
    pub fn with_thread_model(mut self, tm: ThreadModel) -> Self {
        self.thread_model = tm;
        self
    }

    /// The machine this oracle simulates.
    pub fn machine(&self) -> &MachineDescription {
        &self.machine
    }

    /// Deterministic "measured" execution time in seconds for one
    /// configuration (one full multi-timestep run).
    pub fn execution_time(&self, cfg: &StencilConfig) -> f64 {
        let cfg = cfg.normalized();
        let serial = self.serial_time(&cfg);
        let mem_share = self.memory_share(&cfg);
        let mut t = self
            .thread_model
            .scale_time(serial, cfg.threads, mem_share, &self.machine);
        if cfg.threads > 1 {
            // Fork/join barrier once per sweep.
            t += self.timesteps as f64 * self.thread_model.sync_overhead_s * cfg.threads as f64;
            // Tiny working sets parallelize poorly: a small plane already
            // fits one core's private cache, and splitting it trades cache
            // locality for coherence traffic and idle tails.
            let max_speedup = 1.0 + (cfg.points() as f64 / 400_000.0).powf(0.7);
            t = t.max(serial / max_speedup);
        }
        self.noise.apply(t, cfg.hash64())
    }

    /// Single-thread detailed time for one timestep, times `timesteps`.
    fn serial_time(&self, cfg: &StencilConfig) -> f64 {
        let m = &self.machine;
        let w = m.elements_per_line() as f64;
        let ghost = 2.0; // one ghost layer each side (order l = 1)

        // Blocked extents (paper §VII-A reassignment): the streamed tile.
        let ti = cfg.bi.min(cfg.i) as f64;
        let tj = cfg.bj.min(cfg.j) as f64;
        let tk = cfg.bk.min(cfg.k) as f64;
        let ii = ti + ghost;
        let jj = tj + ghost;
        let points = (cfg.i * cfg.j * cfg.k) as f64;
        let n_blocks =
            (cfg.i as f64 / ti).ceil() * (cfg.j as f64 / tj).ceil() * (cfg.k as f64 / tk).ceil();

        // --- Cache-resident working set per k-iteration of a tile:
        // Pread = 3 planes of ii*jj (k-1, k, k+1) + 1 written plane.
        let plane = ii * jj;
        let working_set = 4.0 * plane; // elements

        // --- Compulsory traffic: every grid element is streamed from main
        // memory at least once per sweep (read), and the written stream
        // costs write-allocate fill plus write-back ≈ 1.5 extra transfers.
        // Tiling re-streams the halo overlap of adjacent tiles.
        let halo_factor = (ii * jj * (tk + ghost)) / (ti * tj * tk).max(1.0);
        let compulsory_per_point = 2.5 * halo_factor;

        // --- Neighbour-reuse traffic: the remaining ~3 accesses per point
        // hit the highest cache level whose *effective* capacity (after
        // set-conflict degradation) holds the 4-plane working set; when no
        // level holds it they fall through to memory (the paper model's
        // `nplanes > P_read` regime).
        let reuse_per_point = 3.0;
        let mut reuse_level: Option<usize> = None;
        for (li, level) in m.caches.iter().enumerate() {
            let capacity = level.capacity_elements(m.element_bytes) as f64;
            // Conflict factor: when the padded row spans at least one full
            // set cycle, alignment phase matters; pathological phases cost
            // over half the effective capacity.
            let set_span = (level.n_sets() * level.elements_per_line(m.element_bytes)) as f64;
            let conflict = if ii >= set_span {
                let phase = (ii % set_span) / set_span;
                if !(0.05..=0.95).contains(&phase) {
                    0.45
                } else {
                    0.80
                }
            } else {
                0.90
            };
            if working_set <= capacity * conflict {
                reuse_level = Some(li);
                break;
            }
        }

        // --- Prefetcher: long unit-stride streaks hide memory latency;
        // efficiency rises with the inner streak length (ti elements).
        let prefetch_eff = ti / (ti + 1.5 * w);
        let beta_mem_eff = m.beta_mem() * (1.0 - 0.18 * prefetch_eff);

        let mut t_mem_per_point = compulsory_per_point * beta_mem_eff;
        t_mem_per_point += match reuse_level {
            Some(li) => reuse_per_point * m.beta_cache(li),
            None => reuse_per_point * beta_mem_eff,
        };

        // --- TLB pressure: a 4 KiB page holds 512 elements; when one
        // k-iteration touches more pages than the (assumed 512-entry) TLB
        // holds, each plane walk pays extra latency.
        let pages_per_iter = (4.0 * plane / 512.0).ceil();
        let tlb_penalty = if pages_per_iter > 512.0 {
            // ~20 cycles per missing page translated per k-iteration,
            // amortized over the points of that iteration.
            20.0 * m.cycle_seconds() * (pages_per_iter - 512.0) / (plane.max(1.0))
        } else {
            0.0
        };

        // --- Compute: 8 flops per point; unrolling helps issue width up to
        // 4, hurts past the streak length (remainder churn).
        let u = cfg.unroll as f64;
        let unroll_gain = match cfg.unroll {
            1 => 1.00,
            2 => 0.94,
            3 => 0.92,
            4 => 0.90,
            _ => 0.92 + 0.02 * (u - 4.0), // register pressure creeps back
        };
        let remainder_churn = if ti % u > 0.0 {
            1.0 + 0.04 * u / ti.max(1.0)
        } else {
            1.0
        };
        let t_flop_per_point = FLOPS_PER_POINT * m.time_per_flop() * unroll_gain * remainder_churn;

        // --- Loop overhead: block setup + per-row control.
        let rows = jj * (tk + ghost) * n_blocks;
        let overhead = (n_blocks * 60.0 + rows * 4.0) * m.cycle_seconds();

        let per_point = t_flop_per_point.max(t_mem_per_point + tlb_penalty);
        (per_point * points + overhead) * self.timesteps as f64
    }

    /// Memory-bound share of the runtime (drives the thread-scaling mix).
    fn memory_share(&self, _cfg: &StencilConfig) -> f64 {
        let m = &self.machine;
        let t_flop = FLOPS_PER_POINT * m.time_per_flop();
        let t_mem = 3.0 * m.beta_mem();
        (t_mem / (t_mem + t_flop)).clamp(0.0, 1.0)
    }
}

/// Convenience: wrap the machine and space in a
/// [`StencilWorkload`](crate::workload::StencilWorkload) and generate its
/// dataset (rayon-parallel, deterministic for a fixed seed).
pub fn generate_dataset(
    machine: &MachineDescription,
    space: &StencilSpace,
    noise_seed: u64,
) -> Dataset {
    use lam_core::workload::Workload as _;
    crate::workload::StencilWorkload::new(machine.clone(), space.clone(), noise_seed)
        .generate_dataset()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::space_grid_only;

    fn oracle() -> StencilOracle {
        StencilOracle::new(MachineDescription::blue_waters_xe6(), 7)
    }

    #[test]
    fn time_positive_and_deterministic() {
        let o = oracle();
        let c = StencilConfig::unblocked(128, 128, 128);
        let t = o.execution_time(&c);
        assert!(t > 0.0);
        assert_eq!(t, o.execution_time(&c));
    }

    #[test]
    fn bigger_grids_take_longer() {
        let o = oracle().without_noise();
        let small = o.execution_time(&StencilConfig::unblocked(64, 64, 64));
        let large = o.execution_time(&StencilConfig::unblocked(256, 256, 256));
        assert!(large > small * 20.0, "small {small} large {large}");
    }

    #[test]
    fn stencil_is_memory_bound_on_blue_waters() {
        let o = oracle();
        let share = o.memory_share(&StencilConfig::unblocked(128, 128, 128));
        assert!(share > 0.5, "memory share {share}");
    }

    #[test]
    fn blocking_affects_time() {
        let o = oracle().without_noise();
        let big_grid = StencilConfig::unblocked(1, 128, 128);
        let tiny_blocks = StencilConfig {
            bj: 1,
            bk: 1,
            ..big_grid
        };
        let t_unblocked = o.execution_time(&big_grid);
        let t_tiny = o.execution_time(&tiny_blocks);
        // 1x1 blocks explode loop overhead.
        assert!(
            t_tiny > t_unblocked * 1.5,
            "tiny {t_tiny} unblocked {t_unblocked}"
        );
    }

    #[test]
    fn threads_speed_up_large_grids() {
        let o = oracle().without_noise();
        let c1 = StencilConfig::unblocked(176, 176, 1);
        let c4 = StencilConfig { threads: 4, ..c1 };
        let t1 = o.execution_time(&c1);
        let t4 = o.execution_time(&c4);
        assert!(t4 < t1, "t1 {t1} t4 {t4}");
        assert!(
            t4 > t1 / 8.0,
            "superlinear scaling is a bug: t1 {t1} t4 {t4}"
        );
    }

    #[test]
    fn noise_is_small_but_present() {
        let noisy = oracle();
        let clean = oracle().without_noise();
        let c = StencilConfig::unblocked(128, 128, 128);
        let ratio = noisy.execution_time(&c) / clean.execution_time(&c);
        assert!(ratio != 1.0);
        assert!((ratio - 1.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn free_generate_dataset_covers_space() {
        let machine = MachineDescription::blue_waters_xe6();
        let s = space_grid_only();
        let d = generate_dataset(&machine, &s, 42);
        assert_eq!(d.len(), s.len());
        assert_eq!(d, generate_dataset(&machine, &s, 42));
    }

    #[test]
    fn different_machines_different_times() {
        let bw = StencilOracle::new(MachineDescription::blue_waters_xe6(), 7).without_noise();
        let laptop = StencilOracle::new(MachineDescription::laptop_x86(), 7).without_noise();
        let c = StencilConfig::unblocked(128, 128, 128);
        let tb = bw.execution_time(&c);
        let tl = laptop.execution_time(&c);
        assert!(
            tl < tb,
            "laptop {tl} should beat Blue Waters node core {tb}"
        );
    }
}
