//! 27-point 3-D stencil — the other stencil the paper names ("a 7-point or
//! a 27-point stencil is often used for 3-D domains").
//!
//! The update averages the full 3×3×3 neighbourhood with three weights:
//! centre `c0`, the 6 face neighbours `c1`, the 12 edge neighbours `c2`,
//! and the 8 corner neighbours `c3`.

use crate::config::StencilConfig;
use crate::grid::Grid3;

/// Weights of the 27-point update.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Coefficients27 {
    /// Centre weight.
    pub c0: f64,
    /// Face-neighbour weight (6 points).
    pub c1: f64,
    /// Edge-neighbour weight (12 points).
    pub c2: f64,
    /// Corner-neighbour weight (8 points).
    pub c3: f64,
}

impl Default for Coefficients27 {
    fn default() -> Self {
        // A conservative smoothing kernel: weights sum to 1.
        Self {
            c0: 0.4,
            c1: 0.05,
            c2: 0.02,
            c3: 0.0075,
        }
    }
}

impl Coefficients27 {
    /// Sum of all 27 weights (1.0 for a conservative kernel).
    pub fn total_weight(&self) -> f64 {
        self.c0 + 6.0 * self.c1 + 12.0 * self.c2 + 8.0 * self.c3
    }
}

/// Flops per interior point: 26 adds within shells + 4 multiplies + 3 adds.
pub const FLOPS_PER_POINT_27: f64 = 33.0;

/// One naive 27-point sweep.
pub fn step27_naive(src: &Grid3, dst: &mut Grid3, coef: Coefficients27) {
    assert_eq!(
        (src.nx, src.ny, src.nz, src.ghost),
        (dst.nx, dst.ny, dst.nz, dst.ghost),
        "source and destination grids must have identical shapes"
    );
    let (nx, ny, nz, g) = (src.nx, src.ny, src.nz, src.ghost);
    let xx = src.xx();
    let yy = src.yy();
    let s = src.data();
    let d = dst.data_mut();
    let at = |x: usize, y: usize, z: usize| s[(z * yy + y) * xx + x];
    for z in g..(nz + g) {
        for y in g..(ny + g) {
            for x in g..(nx + g) {
                let mut faces = 0.0;
                let mut edges = 0.0;
                let mut corners = 0.0;
                for dz in -1i64..=1 {
                    for dy in -1i64..=1 {
                        for dx in -1i64..=1 {
                            let dist = dx.abs() + dy.abs() + dz.abs();
                            if dist == 0 {
                                continue;
                            }
                            let v = at(
                                (x as i64 + dx) as usize,
                                (y as i64 + dy) as usize,
                                (z as i64 + dz) as usize,
                            );
                            match dist {
                                1 => faces += v,
                                2 => edges += v,
                                _ => corners += v,
                            }
                        }
                    }
                }
                d[(z * yy + y) * xx + x] =
                    coef.c0 * at(x, y, z) + coef.c1 * faces + coef.c2 * edges + coef.c3 * corners;
            }
        }
    }
}

/// One blocked 27-point sweep; results identical to [`step27_naive`].
pub fn step27_blocked(src: &Grid3, dst: &mut Grid3, coef: Coefficients27, cfg: &StencilConfig) {
    let cfg = cfg.normalized();
    assert_eq!(
        (src.nx, src.ny, src.nz, src.ghost),
        (dst.nx, dst.ny, dst.nz, dst.ghost),
        "source and destination grids must have identical shapes"
    );
    let g = src.ghost;
    let xx = src.xx();
    let yy = src.yy();
    let s = src.data();
    let d = dst.data_mut();
    let at = |x: usize, y: usize, z: usize| s[(z * yy + y) * xx + x];
    let (nx, ny, nz) = (src.nx, src.ny, src.nz);
    let mut z0 = g;
    while z0 < nz + g {
        let z1 = (z0 + cfg.bk).min(nz + g);
        let mut y0 = g;
        while y0 < ny + g {
            let y1 = (y0 + cfg.bj).min(ny + g);
            let mut x0 = g;
            while x0 < nx + g {
                let x1 = (x0 + cfg.bi).min(nx + g);
                for z in z0..z1 {
                    for y in y0..y1 {
                        for x in x0..x1 {
                            // Unrolled shell sums (same classification as
                            // the naive kernel, loop-free).
                            let faces = at(x - 1, y, z)
                                + at(x + 1, y, z)
                                + at(x, y - 1, z)
                                + at(x, y + 1, z)
                                + at(x, y, z - 1)
                                + at(x, y, z + 1);
                            let edges = at(x - 1, y - 1, z)
                                + at(x + 1, y - 1, z)
                                + at(x - 1, y + 1, z)
                                + at(x + 1, y + 1, z)
                                + at(x - 1, y, z - 1)
                                + at(x + 1, y, z - 1)
                                + at(x - 1, y, z + 1)
                                + at(x + 1, y, z + 1)
                                + at(x, y - 1, z - 1)
                                + at(x, y + 1, z - 1)
                                + at(x, y - 1, z + 1)
                                + at(x, y + 1, z + 1);
                            let corners = at(x - 1, y - 1, z - 1)
                                + at(x + 1, y - 1, z - 1)
                                + at(x - 1, y + 1, z - 1)
                                + at(x + 1, y + 1, z - 1)
                                + at(x - 1, y - 1, z + 1)
                                + at(x + 1, y - 1, z + 1)
                                + at(x - 1, y + 1, z + 1)
                                + at(x + 1, y + 1, z + 1);
                            d[(z * yy + y) * xx + x] = coef.c0 * at(x, y, z)
                                + coef.c1 * faces
                                + coef.c2 * edges
                                + coef.c3 * corners;
                        }
                    }
                }
                x0 = x1;
            }
            y0 = y1;
        }
        z0 = z1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init(nx: usize, ny: usize, nz: usize) -> Grid3 {
        let mut g = Grid3::new(nx, ny, nz, 1);
        g.fill_with(|x, y, z| ((x * 13 + y * 29 + z * 7) % 23) as f64 - 11.0);
        g
    }

    #[test]
    fn default_weights_conservative() {
        assert!((Coefficients27::default().total_weight() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn blocked_matches_naive() {
        let src = init(11, 9, 8);
        let mut expect = src.clone();
        step27_naive(&src, &mut expect, Coefficients27::default());
        for (bi, bj, bk) in [(1, 1, 1), (4, 3, 2), (11, 9, 8), (16, 16, 16)] {
            let cfg = StencilConfig {
                i: 11,
                j: 9,
                k: 8,
                bi,
                bj,
                bk,
                unroll: 1,
                threads: 1,
            }
            .normalized();
            let mut got = src.clone();
            step27_blocked(&src, &mut got, Coefficients27::default(), &cfg);
            assert_eq!(got.data(), expect.data(), "blocks ({bi},{bj},{bk})");
        }
    }

    #[test]
    fn constant_field_invariant_in_the_interior() {
        let mut g = Grid3::new(10, 10, 10, 1);
        g.fill_with(|_, _, _| 3.0);
        let mut out = g.clone();
        step27_naive(&g, &mut out, Coefficients27::default());
        for z in 1..9 {
            for y in 1..9 {
                for x in 1..9 {
                    assert!((out.get(x, y, z) - 3.0).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn smoothing_reduces_roughness() {
        let mut g = Grid3::new(12, 12, 12, 1);
        g.fill_with(|x, y, z| if (x + y + z) % 2 == 0 { 1.0 } else { -1.0 });
        let mut out = g.clone();
        step27_naive(&g, &mut out, Coefficients27::default());
        // Interior-of-interior variance must shrink under averaging.
        let rough = |grid: &Grid3| {
            let mut acc = 0.0;
            for z in 2..10 {
                for y in 2..10 {
                    for x in 2..10 {
                        acc += grid.get(x, y, z).powi(2);
                    }
                }
            }
            acc
        };
        assert!(rough(&out) < rough(&g) * 0.9);
    }
}
