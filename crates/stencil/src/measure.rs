//! Wall-clock measurement of the *real* stencil kernel on the host machine.
//!
//! Used by the `hardware_change` example and available to anyone who wants
//! to regenerate the paper's experiments against genuine measurements
//! instead of the simulated oracle (slower, machine-dependent).

use crate::config::{StencilConfig, StencilSpace};
use crate::grid::Grid3;
use crate::kernel::{run, Coefficients};
use lam_data::Dataset;
use std::time::Instant;

/// Measure one configuration: median wall-clock seconds of `reps` runs of
/// `timesteps` sweeps.
pub fn measure_config(cfg: &StencilConfig, timesteps: usize, reps: usize) -> f64 {
    assert!(reps >= 1, "need at least one repetition");
    let cfg = cfg.normalized();
    let mut grid = Grid3::new(cfg.i, cfg.j, cfg.k, 1);
    grid.fill_with(|x, y, z| ((x ^ y ^ z) & 7) as f64);
    let coef = Coefficients::default();
    // Warm-up run to populate caches and the Rayon pool.
    let _ = run(&grid, coef, &cfg, 1);
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            let out = run(&grid, coef, &cfg, timesteps);
            let dt = t0.elapsed().as_secs_f64();
            // Keep the optimizer honest.
            std::hint::black_box(out.interior_sum());
            dt
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

/// Measure a whole space into a dataset (features per the space's
/// projection, response = median wall-clock seconds).
pub fn measure_dataset(space: &StencilSpace, timesteps: usize, reps: usize) -> Dataset {
    let mut data = Dataset::empty(space.feature_names());
    for cfg in space.configs() {
        let y = measure_config(cfg, timesteps, reps);
        data.push(&space.features.project(cfg), y);
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_positive() {
        let cfg = StencilConfig::unblocked(16, 16, 16);
        let t = measure_config(&cfg, 2, 1);
        assert!(t > 0.0);
    }

    #[test]
    fn larger_work_measures_slower() {
        let small = measure_config(&StencilConfig::unblocked(8, 8, 8), 1, 3);
        let large = measure_config(&StencilConfig::unblocked(64, 64, 64), 8, 3);
        assert!(large > small, "small {small} large {large}");
    }

    #[test]
    #[should_panic(expected = "repetition")]
    fn zero_reps_panics() {
        measure_config(&StencilConfig::unblocked(8, 8, 8), 1, 0);
    }
}
