//! Ghosted 3-D grid storage for stencil sweeps.
//!
//! Memory layout is `x` fastest (unit stride), then `y`, then `z` — the
//! layout the paper's cache model assumes (`II` contiguous, planes of
//! `II × JJ`). One ghost layer of width `l` (the stencil order) surrounds
//! the interior.

/// A 3-D grid of `f64` with ghost layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid3 {
    /// Interior points in x.
    pub nx: usize,
    /// Interior points in y.
    pub ny: usize,
    /// Interior points in z.
    pub nz: usize,
    /// Ghost-layer width (stencil order; 1 for the 7-point stencil).
    pub ghost: usize,
    data: Vec<f64>,
}

impl Grid3 {
    /// Allocate a zero-filled grid.
    pub fn new(nx: usize, ny: usize, nz: usize, ghost: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid dims must be positive");
        let (xx, yy, zz) = (nx + 2 * ghost, ny + 2 * ghost, nz + 2 * ghost);
        Self {
            nx,
            ny,
            nz,
            ghost,
            data: vec![0.0; xx * yy * zz],
        }
    }

    /// Padded (ghost-inclusive) x dimension — the paper's `II`.
    #[inline]
    pub fn xx(&self) -> usize {
        self.nx + 2 * self.ghost
    }

    /// Padded y dimension — the paper's `JJ`.
    #[inline]
    pub fn yy(&self) -> usize {
        self.ny + 2 * self.ghost
    }

    /// Padded z dimension — the paper's `KK`.
    #[inline]
    pub fn zz(&self) -> usize {
        self.nz + 2 * self.ghost
    }

    /// Flat index of padded coordinates (including ghosts, origin at the
    /// padded corner).
    #[inline]
    pub fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        (z * self.yy() + y) * self.xx() + x
    }

    /// Read an interior point by interior coordinates (0-based, excluding
    /// ghosts).
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> f64 {
        let g = self.ghost;
        self.data[self.idx(x + g, y + g, z + g)]
    }

    /// Write an interior point by interior coordinates.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: f64) {
        let g = self.ghost;
        let i = self.idx(x + g, y + g, z + g);
        self.data[i] = v;
    }

    /// Borrow the raw buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the raw buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fill the interior with `f(x, y, z)`; ghosts are left at zero
    /// (homogeneous Dirichlet boundary).
    pub fn fill_with<F: Fn(usize, usize, usize) -> f64>(&mut self, f: F) {
        for z in 0..self.nz {
            for y in 0..self.ny {
                for x in 0..self.nx {
                    self.set(x, y, z, f(x, y, z));
                }
            }
        }
    }

    /// Sum of interior values (checksum for correctness tests).
    pub fn interior_sum(&self) -> f64 {
        let mut acc = 0.0;
        for z in 0..self.nz {
            for y in 0..self.ny {
                for x in 0..self.nx {
                    acc += self.get(x, y, z);
                }
            }
        }
        acc
    }

    /// Total allocated elements (with ghosts).
    pub fn padded_len(&self) -> usize {
        self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let g = Grid3::new(4, 5, 6, 1);
        assert_eq!(g.xx(), 6);
        assert_eq!(g.yy(), 7);
        assert_eq!(g.zz(), 8);
        assert_eq!(g.padded_len(), 6 * 7 * 8);
    }

    #[test]
    fn get_set_round_trip() {
        let mut g = Grid3::new(3, 3, 3, 1);
        g.set(0, 0, 0, 1.5);
        g.set(2, 2, 2, 2.5);
        assert_eq!(g.get(0, 0, 0), 1.5);
        assert_eq!(g.get(2, 2, 2), 2.5);
        assert_eq!(g.get(1, 1, 1), 0.0);
    }

    #[test]
    fn x_is_unit_stride() {
        let g = Grid3::new(4, 4, 4, 1);
        assert_eq!(g.idx(2, 1, 1) - g.idx(1, 1, 1), 1);
        assert_eq!(g.idx(1, 2, 1) - g.idx(1, 1, 1), g.xx());
        assert_eq!(g.idx(1, 1, 2) - g.idx(1, 1, 1), g.xx() * g.yy());
    }

    #[test]
    fn fill_and_sum() {
        let mut g = Grid3::new(2, 2, 2, 1);
        g.fill_with(|x, y, z| (x + y + z) as f64);
        // sum over 2x2x2 of (x+y+z): each coordinate sums to 4 over 8 points
        assert_eq!(g.interior_sum(), 12.0);
    }

    #[test]
    fn ghosts_stay_zero() {
        let mut g = Grid3::new(2, 2, 2, 1);
        g.fill_with(|_, _, _| 1.0);
        // Corner ghost at padded (0,0,0):
        assert_eq!(g.data()[0], 0.0);
        assert_eq!(g.interior_sum(), 8.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        Grid3::new(0, 1, 1, 1);
    }
}
