//! Trace-driven cache analysis of the stencil.
//!
//! Replays the exact byte-address stream of one (possibly blocked) stencil
//! sweep through the [`lam_machine::hierarchy::CacheHierarchy`] simulator.
//! This is the ground-level validation tool for the §IV analytical miss
//! model: the closed-form `Misses_Li` (eq 7) can be checked against real
//! simulated LRU behaviour on small grids.

use crate::config::StencilConfig;
use lam_machine::arch::MachineDescription;
use lam_machine::hierarchy::CacheHierarchy;

/// Per-level traffic summary of a traced sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Total element accesses replayed (reads + writes).
    pub accesses: u64,
    /// Misses observed at each cache level (index 0 = L1).
    pub level_misses: Vec<u64>,
    /// Accesses that reached main memory.
    pub memory_accesses: u64,
}

impl TraceSummary {
    /// Misses of the last cache level = lines fetched from memory, the
    /// quantity the analytical model's `T_mem` charges.
    pub fn llc_misses(&self) -> u64 {
        *self.level_misses.last().expect("at least one level")
    }
}

/// Replay one blocked sweep's address stream (7-point reads + write per
/// interior point, in blocked loop order) through the machine's cache
/// hierarchy. `cfg.unroll`/`cfg.threads` do not change the stream.
pub fn trace_sweep(cfg: &StencilConfig, machine: &MachineDescription) -> TraceSummary {
    let cfg = cfg.normalized();
    let mut h = CacheHierarchy::new(machine);
    let es = machine.element_bytes;
    let g = 1usize; // ghost width (stencil order 1)
    let xx = (cfg.i + 2 * g) as u64;
    let yy = (cfg.j + 2 * g) as u64;
    let idx = |x: u64, y: u64, z: u64| -> u64 { ((z * yy + y) * xx + x) * es };
    // Destination grid lives after the source grid in memory.
    let zz = (cfg.k + 2 * g) as u64;
    let dst_base = xx * yy * zz * es;

    let mut z0 = g;
    while z0 < cfg.k + g {
        let z1 = (z0 + cfg.bk).min(cfg.k + g);
        let mut y0 = g;
        while y0 < cfg.j + g {
            let y1 = (y0 + cfg.bj).min(cfg.j + g);
            let mut x0 = g;
            while x0 < cfg.i + g {
                let x1 = (x0 + cfg.bi).min(cfg.i + g);
                for z in z0..z1 {
                    for y in y0..y1 {
                        for x in x0..x1 {
                            let (x, y, z) = (x as u64, y as u64, z as u64);
                            // 7 reads in the order the kernel issues them.
                            h.access(idx(x, y, z));
                            h.access(idx(x - 1, y, z));
                            h.access(idx(x + 1, y, z));
                            h.access(idx(x, y - 1, z));
                            h.access(idx(x, y + 1, z));
                            h.access(idx(x, y, z - 1));
                            h.access(idx(x, y, z + 1));
                            // 1 write (write-allocate).
                            h.access(dst_base + idx(x, y, z));
                        }
                    }
                }
                x0 = x1;
            }
            y0 = y1;
        }
        z0 = z1;
    }

    TraceSummary {
        accesses: h.total_accesses(),
        level_misses: (0..h.n_levels()).map(|l| h.misses_at(l)).collect(),
        memory_accesses: h.memory_accesses(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> MachineDescription {
        MachineDescription::blue_waters_xe6()
    }

    #[test]
    fn access_count_is_eight_per_point() {
        let cfg = StencilConfig::unblocked(8, 8, 8);
        let t = trace_sweep(&cfg, &machine());
        assert_eq!(t.accesses, 8 * 8 * 8 * 8);
    }

    #[test]
    fn misses_monotone_down_the_hierarchy() {
        let cfg = StencilConfig::unblocked(24, 24, 24);
        let t = trace_sweep(&cfg, &machine());
        for w in t.level_misses.windows(2) {
            assert!(
                w[1] <= w[0],
                "deeper level missed more: {:?}",
                t.level_misses
            );
        }
        assert_eq!(t.memory_accesses, t.llc_misses());
    }

    #[test]
    fn compulsory_floor_respected() {
        // At minimum, every distinct source and destination line must miss
        // the LLC once.
        let cfg = StencilConfig::unblocked(16, 16, 16);
        let m = machine();
        let t = trace_sweep(&cfg, &m);
        let w = m.elements_per_line();
        let xx = 18u64;
        let lines_per_grid = (xx * 18 * 18).div_ceil(w);
        assert!(
            t.llc_misses() >= lines_per_grid, // at least the source grid
            "LLC misses {} below compulsory floor {}",
            t.llc_misses(),
            lines_per_grid
        );
    }

    #[test]
    fn small_grid_fits_l1_after_warmup() {
        // A 6x6x6 padded grid (8^3 * 8B * 2 grids = 8 KiB) fits in L1 →
        // L1 misses are dominated by compulsory line fetches, i.e. close
        // to total lines, far below accesses.
        let cfg = StencilConfig::unblocked(6, 6, 6);
        let t = trace_sweep(&cfg, &machine());
        assert!(t.level_misses[0] < t.accesses / 10);
    }

    #[test]
    fn thin_plane_reuse_beats_column_blocks() {
        // For a thin 1xJxK grid, full-plane traversal reuses the 3-plane
        // window; pathological 1x1 blocking revisits lines after eviction
        // at small L1, raising L1 misses.
        let m = machine();
        let full = trace_sweep(&StencilConfig::unblocked(1, 96, 96), &m);
        let tiny = trace_sweep(
            &StencilConfig {
                bj: 1,
                bk: 1,
                ..StencilConfig::unblocked(1, 96, 96)
            },
            &m,
        );
        assert!(
            tiny.level_misses[0] >= full.level_misses[0],
            "tiny-block L1 misses {} < full {}",
            tiny.level_misses[0],
            full.level_misses[0]
        );
    }

    #[test]
    fn trace_deterministic() {
        let cfg = StencilConfig::unblocked(10, 12, 9);
        let m = machine();
        assert_eq!(trace_sweep(&cfg, &m), trace_sweep(&cfg, &m));
    }
}
