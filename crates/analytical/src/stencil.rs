//! Analytical stencil model (paper §IV-A): the multi-level cache model of
//! de la Cruz & Araya-Polo with the `nplanes` case analysis (eq 7's
//! conditional table), linear-interpolation smoothing between cases, and
//! the spatial-blocking extension of §VII-A (eq 15).
//!
//! The model is *single-core* and *untuned* by design: §VII evaluates the
//! hybrid approach with exactly these inaccuracies left in.

use crate::traits::AnalyticalModel;
use lam_machine::arch::MachineDescription;

/// Number of read planes for an order-`l` stencil: `P_read = 2l + 1`.
fn p_read(order: usize) -> f64 {
    (2 * order + 1) as f64
}

/// `R_col = P_read / (2 P_read − 1)` from the paper.
fn r_col(order: usize) -> f64 {
    let p = p_read(order);
    p / (2.0 * p - 1.0)
}

/// Smoothed `nplanes` for one cache level.
///
/// The paper's conditional table maps the level's capacity (in lines,
/// `size_Li / W`) to a number of `II×JJ` planes re-read per `k` iteration:
///
/// * `cap·R_col ≥ S_total`          → 1
/// * `cap > S_total`                → (1, P_read−1]
/// * `cap·R_col > S_read`           → (P_read−1, P_read]
/// * `cap·R_col ≥ P_read·II`        → (P_read, 2·P_read−1]
/// * otherwise                      → 2·P_read−1
///
/// We realize the intervals with piecewise-linear interpolation in
/// `log(cap)` between the case boundaries, which is monotone and matches
/// the table at every boundary — the "linear interpolation to smooth
/// discontinuities" the paper prescribes.
pub fn nplanes(cap_lines: f64, s_total: f64, s_read: f64, ii: f64, order: usize) -> f64 {
    let p = p_read(order);
    let rc = r_col(order);
    // Case boundaries expressed as capacities (decreasing):
    let t1 = s_total / rc; // nplanes = 1 at/above this
    let t2 = s_total; // nplanes = p − 1
    let t3 = s_read / rc; // nplanes = p
    let t4 = (p * ii) / rc; // nplanes = 2p − 1 at/below this
    let pts: [(f64, f64); 4] = [(t1, 1.0), (t2, p - 1.0), (t3, p), (t4, 2.0 * p - 1.0)];
    // Guard against degenerate orderings on tiny problems: sort by capacity
    // descending and clamp outside the bracket.
    let mut pts = pts;
    pts.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite thresholds"));
    if cap_lines >= pts[0].0 {
        return 1.0; // largest capacity case: a single plane re-read
    }
    if cap_lines <= pts[3].0 {
        return 2.0 * p - 1.0;
    }
    for w in pts.windows(2) {
        let (c_hi, n_lo) = w[0];
        let (c_lo, n_hi) = w[1];
        if cap_lines <= c_hi && cap_lines >= c_lo {
            if c_hi <= c_lo {
                return n_hi;
            }
            // interpolate in log-capacity
            let x = (cap_lines.ln() - c_lo.ln()) / (c_hi.ln() - c_lo.ln());
            return n_hi + (n_lo - n_hi) * x;
        }
    }
    2.0 * p - 1.0
}

/// Shared core of the grid-only and blocked models: time one sweep of a
/// (possibly tiled) volume.
#[derive(Debug, Clone)]
struct CacheModel {
    machine: MachineDescription,
    order: usize,
    timesteps: usize,
}

impl CacheModel {
    /// Time to sweep a tile of interior extent `(ti, tj, tk)` embedded in a
    /// grid walked `nb` times (eq 15: misses scale by the number of
    /// blocks).
    fn sweep_time(&self, ti: f64, tj: f64, tk: f64, nb: f64) -> f64 {
        let m = &self.machine;
        let w = m.elements_per_line() as f64;
        let l = self.order as f64;
        // §VII-A reassignment of the extended dimensions for a tile.
        let ii = ((ti + 2.0 * l) / w).ceil() * w;
        let jj = tj + 2.0 * l;
        let kk = tk + 2.0 * l;
        let s_read = ii * jj;
        let s_write = ti * tj;
        let p = p_read(self.order);
        let s_total = p * s_read + 1.0 * s_write; // eq 3, write-allocate

        // Misses per level (eq 7 / eq 15), in cache lines.
        let lines_per_row = (ii / w).ceil();
        let misses: Vec<f64> = m
            .caches
            .iter()
            .map(|level| {
                let cap_lines = level.capacity_elements(m.element_bytes) as f64 / w;
                let np = nplanes(cap_lines, s_total, s_read, ii, self.order);
                lines_per_row * jj * kk * np * nb
            })
            .collect();

        // eq 5/6: T = Σ_i T_Li + T_mem with
        //   Hits_Li = Misses_{L(i−1)} − Misses_Li (element loads for L1).
        let accesses_elems = (p + 1.0) * ti * tj * tk * nb; // reads + writes per point
        let mut t = 0.0;
        for (i, &miss) in misses.iter().enumerate() {
            let hits_elems = if i == 0 {
                (accesses_elems - miss * w).max(0.0)
            } else {
                ((misses[i - 1] - miss) * w).max(0.0)
            };
            t += hits_elems * m.beta_cache(i);
        }
        t += misses.last().copied().unwrap_or(0.0) * w * m.beta_mem();
        t * self.timesteps as f64
    }
}

/// Grid-only analytical model (Fig 5 / Fig 7 feature layouts): features
/// `(I, J, K)` or `(I, J, K, t)` — the thread column, when present, is
/// ignored (the model is single-core, exactly as in the paper's Fig 7
/// study).
#[derive(Debug, Clone)]
pub struct StencilAnalyticalModel {
    core: CacheModel,
}

impl StencilAnalyticalModel {
    /// Build for a machine; `timesteps` must match the oracle/measurement
    /// protocol (the workspace default is 4).
    pub fn new(machine: MachineDescription, timesteps: usize) -> Self {
        Self {
            core: CacheModel {
                machine,
                order: 1,
                timesteps,
            },
        }
    }
}

impl AnalyticalModel for StencilAnalyticalModel {
    fn predict(&self, x: &[f64]) -> f64 {
        assert!(x.len() >= 3, "expected features (I, J, K, ...)");
        let (i, j, k) = (x[0], x[1], x[2]);
        self.core.sweep_time(i, j, k, 1.0)
    }

    fn name(&self) -> &'static str {
        "stencil_am"
    }
}

/// Blocked analytical model (Fig 3A / Fig 6 feature layout): features
/// `(I, J, K, bi, bj, bk)`; applies the §VII-A spatial-blocking rewrite
/// (eq 15).
#[derive(Debug, Clone)]
pub struct BlockedStencilModel {
    core: CacheModel,
}

impl BlockedStencilModel {
    /// Build for a machine with the experiment's timestep count.
    pub fn new(machine: MachineDescription, timesteps: usize) -> Self {
        Self {
            core: CacheModel {
                machine,
                order: 1,
                timesteps,
            },
        }
    }
}

impl AnalyticalModel for BlockedStencilModel {
    fn predict(&self, x: &[f64]) -> f64 {
        assert!(x.len() >= 6, "expected features (I, J, K, bi, bj, bk)");
        let (i, j, k) = (x[0], x[1], x[2]);
        let (ti, tj, tk) = (x[3].max(1.0), x[4].max(1.0), x[5].max(1.0));
        let nb = (i / ti).ceil() * (j / tj).ceil() * (k / tk).ceil();
        self.core.sweep_time(ti.min(i), tj.min(j), tk.min(k), nb)
    }

    fn name(&self) -> &'static str {
        "stencil_blocked_am"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lam_machine::arch::MachineDescription;

    fn grid_model() -> StencilAnalyticalModel {
        StencilAnalyticalModel::new(MachineDescription::blue_waters_xe6(), 4)
    }

    fn blocked_model() -> BlockedStencilModel {
        BlockedStencilModel::new(MachineDescription::blue_waters_xe6(), 4)
    }

    #[test]
    fn nplanes_limits() {
        // Huge cache → 1 plane; tiny cache → 2p−1 planes.
        assert_eq!(nplanes(1e12, 1e4, 3e3, 130.0, 1), 1.0);
        assert_eq!(nplanes(1.0, 1e4, 3e3, 130.0, 1), 5.0);
    }

    #[test]
    fn nplanes_monotone_in_capacity() {
        let (s_total, s_read, ii) = (4.0 * 130.0 * 130.0, 130.0 * 130.0, 130.0);
        let mut prev = f64::INFINITY;
        for exp in 0..30 {
            let cap = 2.0f64.powi(exp);
            let np = nplanes(cap, s_total, s_read, ii, 1);
            assert!(np <= prev + 1e-12, "cap {cap}: {np} > {prev}");
            assert!((1.0..=5.0).contains(&np));
            prev = np;
        }
    }

    #[test]
    fn prediction_positive_and_monotone_in_size() {
        let m = grid_model();
        let t1 = m.predict(&[128.0, 128.0, 128.0]);
        let t2 = m.predict(&[256.0, 256.0, 256.0]);
        assert!(t1 > 0.0);
        assert!(t2 > 6.0 * t1, "t1 {t1} t2 {t2}");
    }

    #[test]
    fn grid_model_ignores_thread_column() {
        let m = grid_model();
        let a = m.predict(&[128.0, 128.0, 1.0]);
        let b = m.predict(&[128.0, 128.0, 1.0, 8.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn blocked_model_full_block_matches_unblocked() {
        let g = grid_model();
        let b = blocked_model();
        let unblocked = g.predict(&[1.0, 128.0, 128.0]);
        let full_block = b.predict(&[1.0, 128.0, 128.0, 1.0, 128.0, 128.0]);
        assert!(
            (unblocked - full_block).abs() / unblocked < 1e-9,
            "{unblocked} vs {full_block}"
        );
    }

    #[test]
    fn tiny_blocks_predicted_slower() {
        let b = blocked_model();
        let full = b.predict(&[1.0, 128.0, 128.0, 1.0, 128.0, 128.0]);
        let tiny = b.predict(&[1.0, 128.0, 128.0, 1.0, 1.0, 1.0]);
        assert!(tiny > full, "tiny {tiny} full {full}");
    }

    #[test]
    fn blocked_model_clamps_oversized_blocks() {
        let b = blocked_model();
        let exact = b.predict(&[1.0, 64.0, 64.0, 1.0, 64.0, 64.0]);
        let oversized = b.predict(&[1.0, 64.0, 64.0, 8.0, 128.0, 128.0]);
        assert!((exact - oversized).abs() / exact < 1e-9);
    }

    #[test]
    #[should_panic(expected = "expected features")]
    fn short_feature_vector_panics() {
        grid_model().predict(&[1.0, 2.0]);
    }

    #[test]
    fn correlates_with_oracle_but_not_exact() {
        // The untuned AM must be in the oracle's ballpark (same order of
        // magnitude) without matching it — that is the §VII regime.
        use lam_stencil::config::space_grid_only;
        use lam_stencil::oracle::StencilOracle;
        let machine = MachineDescription::blue_waters_xe6();
        let oracle = StencilOracle::new(machine.clone(), 5).without_noise();
        let am = grid_model();
        let space = space_grid_only();
        let mut ratio_min = f64::INFINITY;
        let mut ratio_max = 0.0f64;
        for cfg in space.configs().iter().step_by(37) {
            let x = [cfg.i as f64, cfg.j as f64, cfg.k as f64];
            let r = am.predict(&x) / oracle.execution_time(cfg);
            ratio_min = ratio_min.min(r);
            ratio_max = ratio_max.max(r);
        }
        assert!(ratio_min > 0.05, "AM collapsed: min ratio {ratio_min}");
        assert!(ratio_max < 20.0, "AM exploded: max ratio {ratio_max}");
    }
}
