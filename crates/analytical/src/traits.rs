//! The analytical-model abstraction the hybrid framework builds on.

/// A closed-form performance model: a pure function from a feature vector
/// to a predicted execution time in seconds.
///
/// Unlike a machine-learning [`lam_ml::model::Regressor`] an analytical
/// model needs no training — it is derived from first principles (machine
/// parameters and algorithm structure). The hybrid model treats its
/// prediction as one more feature of the learning problem.
pub trait AnalyticalModel: Send + Sync {
    /// Predicted execution time (seconds) for a feature vector laid out as
    /// the corresponding dataset's columns.
    fn predict(&self, x: &[f64]) -> f64;

    /// Predict a batch of rows.
    fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Short name for reports.
    fn name(&self) -> &'static str {
        "analytical"
    }
}

impl<M: AnalyticalModel + ?Sized> AnalyticalModel for Box<M> {
    fn predict(&self, x: &[f64]) -> f64 {
        (**self).predict(x)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// A constant-time model; useful as a degenerate baseline in tests (it
/// carries no information, so stacking it should not help).
#[derive(Debug, Clone, Copy)]
pub struct ConstantModel(pub f64);

impl AnalyticalModel for ConstantModel {
    fn predict(&self, _x: &[f64]) -> f64 {
        self.0
    }
    fn name(&self) -> &'static str {
        "constant"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model_ignores_input() {
        let m = ConstantModel(2.5);
        assert_eq!(m.predict(&[1.0, 2.0]), 2.5);
        assert_eq!(m.predict(&[]), 2.5);
        assert_eq!(m.predict_batch(&[vec![0.0], vec![9.9]]), vec![2.5, 2.5]);
    }

    #[test]
    fn boxed_model_delegates() {
        let m: Box<dyn AnalyticalModel> = Box::new(ConstantModel(1.0));
        assert_eq!(m.predict(&[3.0]), 1.0);
        assert_eq!(m.name(), "constant");
    }
}
