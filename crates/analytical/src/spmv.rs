//! Analytical SpMV model: the classic roofline bound.
//!
//! CSR SpMV performs ~2 flops per stored nonzero while streaming 12 bytes
//! of matrix data (8-byte value + 4-byte column index) plus the vector
//! traffic, so its arithmetic intensity sits far below the ridge point of
//! any modern machine — it is the textbook memory-bound kernel. The model
//! is therefore one line: `time = flops / attainable(ai)` on the
//! single-core roofline of [`lam_machine::roofline::Roofline`].
//!
//! Like the paper's §IV models it is deliberately **untuned**: it assumes
//! perfect streaming (every `x` element fetched exactly once), and it
//! ignores row blocking, loop overheads, and threads entirely — the same
//! "does not capture the parallelism" stance the paper takes for the
//! threaded stencil space. Those inaccuracies are the signal the hybrid
//! model corrects.

use crate::traits::AnalyticalModel;
use lam_machine::arch::MachineDescription;
use lam_machine::roofline::Roofline;

/// Flops charged per stored nonzero (multiply + add). Must agree with the
/// SpMV kernel's own accounting.
pub const FLOPS_PER_NNZ: f64 = 2.0;

/// Bytes streamed per stored nonzero: 8-byte value + 4-byte column index.
pub const BYTES_PER_NNZ: f64 = 12.0;

/// Bytes charged per matrix row: `x` read once (8), `y` write-allocate
/// fill + write-back (16), one `row_ptr` entry (8).
pub const BYTES_PER_ROW: f64 = 32.0;

/// Roofline-bound SpMV model over the feature layout
/// `(rows, nnz_per_row, row_block, threads)`.
#[derive(Debug, Clone)]
pub struct SpmvRooflineModel {
    machine: MachineDescription,
    /// Sweeps per modeled run; must match the oracle's setting.
    pub sweeps: usize,
}

impl SpmvRooflineModel {
    /// Model on a machine, timing `sweeps` repeated applications.
    pub fn new(machine: MachineDescription, sweeps: usize) -> Self {
        Self { machine, sweeps }
    }

    /// Arithmetic intensity (flops/byte) of an `n × n` band matrix with
    /// `nnz_row` nonzeros per row.
    pub fn intensity(n: f64, nnz_row: f64) -> f64 {
        let nnz = n * nnz_row;
        FLOPS_PER_NNZ * nnz / (BYTES_PER_NNZ * nnz + BYTES_PER_ROW * n)
    }
}

impl AnalyticalModel for SpmvRooflineModel {
    fn predict(&self, x: &[f64]) -> f64 {
        let n = x.first().copied().unwrap_or(1.0).max(1.0);
        let nnz_row = x.get(1).copied().unwrap_or(1.0).max(1.0);
        let flops = FLOPS_PER_NNZ * n * nnz_row;
        let roofline = Roofline::per_core(&self.machine);
        let attainable = roofline.attainable(Self::intensity(n, nnz_row));
        self.sweeps as f64 * flops / attainable
    }

    fn name(&self) -> &'static str {
        "spmv_roofline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SpmvRooflineModel {
        SpmvRooflineModel::new(MachineDescription::blue_waters_xe6(), 8)
    }

    #[test]
    fn spmv_sits_below_the_blue_waters_ridge() {
        let m = MachineDescription::blue_waters_xe6();
        let r = Roofline::per_core(&m);
        // 2 flops per ~12.5 bytes ≈ 0.16 flop/B, well under the ridge.
        let ai = SpmvRooflineModel::intensity(65_536.0, 9.0);
        assert!(ai < 0.2, "ai {ai}");
        assert!(r.memory_bound(ai), "SpMV must be memory-bound (ai {ai})");
    }

    #[test]
    fn prediction_is_bandwidth_time() {
        let m = model();
        let (n, nnz_row) = (65_536.0, 9.0);
        let t = m.predict(&[n, nnz_row, 1024.0, 1.0]);
        // Memory-bound: time = sweeps * bytes / peak_bandwidth.
        let bytes = BYTES_PER_NNZ * n * nnz_row + BYTES_PER_ROW * n;
        let expect = 8.0 * bytes / (25.6e9);
        assert!((t - expect).abs() / expect < 1e-9, "t {t} expect {expect}");
    }

    #[test]
    fn model_grows_with_rows_and_band() {
        let m = model();
        let base = m.predict(&[16_384.0, 3.0, 64.0, 1.0]);
        assert!(m.predict(&[131_072.0, 3.0, 64.0, 1.0]) > base * 7.0);
        assert!(m.predict(&[16_384.0, 65.0, 64.0, 1.0]) > base * 5.0);
    }

    #[test]
    fn model_deliberately_ignores_blocking_and_threads() {
        let m = model();
        let a = m.predict(&[16_384.0, 9.0, 64.0, 1.0]);
        let b = m.predict(&[16_384.0, 9.0, 16_384.0, 8.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_features_stay_finite() {
        let m = model();
        assert!(m.predict(&[]).is_finite());
        assert!(m.predict(&[0.0, 0.0]) > 0.0);
    }
}
