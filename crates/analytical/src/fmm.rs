//! Analytical FMM model (paper §IV-B): computation costs of the two
//! dominant phases (eqs 8–9) and their cache-oblivious memory-access
//! bounds (eqs 12 and 14), combined per phase with the overlap law
//! `T = max(T_flop, T_mem)` (eq 2).
//!
//! Deliberately untuned (§VII-B quotes MAPE = 84.5 % for exactly this
//! model) and single-core: the feature vector is `(t, N, q, k)` but `t` is
//! ignored.

use crate::traits::AnalyticalModel;
use lam_machine::arch::MachineDescription;

/// The §IV-B model over a machine description.
#[derive(Debug, Clone)]
pub struct FmmAnalyticalModel {
    machine: MachineDescription,
}

impl FmmAnalyticalModel {
    /// Build for a machine.
    pub fn new(machine: MachineDescription) -> Self {
        Self { machine }
    }

    /// Cache size `Z` in elements (the last-level cache, as the
    /// cache-oblivious bound intends the largest reuse window).
    fn z_elements(&self) -> f64 {
        let m = &self.machine;
        m.caches
            .last()
            .map(|c| c.capacity_elements(m.element_bytes) as f64)
            .unwrap_or(1.0)
    }

    /// P2P computation cost (eq 8): `27 q N t_c`.
    pub fn t_flop_p2p(&self, n: f64, q: f64) -> f64 {
        27.0 * q * n * self.machine.time_per_flop()
    }

    /// M2L computation cost (eq 9): `189 N k⁶ / q · t_c`.
    pub fn t_flop_m2l(&self, n: f64, q: f64, k: f64) -> f64 {
        189.0 * n * k.powi(6) / q * self.machine.time_per_flop()
    }

    /// P2P memory cost (eq 12): `N β + N L / (Z^{1/3} q^{2/3}) β`.
    pub fn t_mem_p2p(&self, n: f64, q: f64) -> f64 {
        let m = &self.machine;
        let l = m.elements_per_line() as f64;
        let z = self.z_elements();
        (n + n * l / (z.powf(1.0 / 3.0) * q.powf(2.0 / 3.0))) * m.beta_mem()
    }

    /// M2L memory cost (eq 14): `N k⁶/q β + N k² L / (q Z^{1/3}) β`.
    pub fn t_mem_m2l(&self, n: f64, q: f64, k: f64) -> f64 {
        let m = &self.machine;
        let l = m.elements_per_line() as f64;
        let z = self.z_elements();
        (n * k.powi(6) / q + n * k * k * l / (q * z.powf(1.0 / 3.0))) * m.beta_mem()
    }
}

impl AnalyticalModel for FmmAnalyticalModel {
    /// Features `(t, N, q, k)`; `t` is ignored (single-core model).
    fn predict(&self, x: &[f64]) -> f64 {
        assert!(x.len() >= 4, "expected features (t, N, q, k)");
        let (n, q, k) = (x[1], x[2], x[3]);
        assert!(n > 0.0 && q > 0.0 && k > 0.0, "N, q, k must be positive");
        let p2p = self.t_flop_p2p(n, q).max(self.t_mem_p2p(n, q));
        let m2l = self.t_flop_m2l(n, q, k).max(self.t_mem_m2l(n, q, k));
        p2p + m2l
    }

    fn name(&self) -> &'static str {
        "fmm_am"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lam_machine::arch::MachineDescription;

    fn model() -> FmmAnalyticalModel {
        FmmAnalyticalModel::new(MachineDescription::blue_waters_xe6())
    }

    #[test]
    fn k6_scaling_of_m2l() {
        let m = model();
        let a = m.t_flop_m2l(4096.0, 64.0, 4.0);
        let b = m.t_flop_m2l(4096.0, 64.0, 8.0);
        assert!((b / a - 64.0).abs() < 1e-9, "ratio {}", b / a);
    }

    #[test]
    fn p2p_linear_in_q_and_n() {
        let m = model();
        assert!((m.t_flop_p2p(8192.0, 64.0) / m.t_flop_p2p(4096.0, 64.0) - 2.0).abs() < 1e-12);
        assert!((m.t_flop_p2p(4096.0, 128.0) / m.t_flop_p2p(4096.0, 64.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn prediction_positive_and_k_monotone() {
        let m = model();
        let mut prev = 0.0;
        for k in 2..=12 {
            let t = m.predict(&[1.0, 8192.0, 64.0, k as f64]);
            assert!(t > prev, "k={k}: {t} <= {prev}");
            prev = t;
        }
    }

    #[test]
    fn thread_column_ignored() {
        let m = model();
        let a = m.predict(&[1.0, 4096.0, 64.0, 6.0]);
        let b = m.predict(&[16.0, 4096.0, 64.0, 6.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn q_tradeoff_exists() {
        // For large k the model should prefer larger q (fewer cells),
        // mirroring the real tradeoff.
        let m = model();
        let small_q = m.predict(&[1.0, 16384.0, 32.0, 12.0]);
        let large_q = m.predict(&[1.0, 16384.0, 256.0, 12.0]);
        assert!(large_q < small_q);
    }

    #[test]
    fn memory_terms_positive() {
        let m = model();
        assert!(m.t_mem_p2p(4096.0, 64.0) > 0.0);
        assert!(m.t_mem_m2l(4096.0, 64.0, 6.0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "expected features")]
    fn short_features_panic() {
        model().predict(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn ballpark_of_oracle_without_matching() {
        use lam_fmm::config::space_paper;
        use lam_fmm::oracle::FmmOracle;
        let machine = MachineDescription::blue_waters_xe6();
        let oracle = FmmOracle::new(machine.clone(), 3).without_noise();
        let am = model();
        let mut log_ratios = Vec::new();
        for cfg in space_paper().configs().iter().step_by(53) {
            let x = cfg.features();
            let r = am.predict(&x) / oracle.execution_time(cfg);
            log_ratios.push(r.ln());
        }
        let mean: f64 = log_ratios.iter().sum::<f64>() / log_ratios.len() as f64;
        // Within a factor ~30 on (geometric) average, but not exact.
        assert!(mean.abs() < 3.4, "geometric mean ratio {}", mean.exp());
        let spread: f64 = log_ratios
            .iter()
            .map(|l| (l - mean) * (l - mean))
            .sum::<f64>()
            / log_ratios.len() as f64;
        assert!(spread.sqrt() > 0.05, "AM suspiciously exact");
    }
}
