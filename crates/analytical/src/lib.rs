//! # lam-analytical
//!
//! The paper's §IV analytical performance models, implemented verbatim and
//! deliberately **untuned** (the evaluation studies how well the hybrid
//! model corrects inaccurate analytical models — §VII quotes MAPE ≈ 42 %
//! for the blocked stencil model and ≈ 84.5 % for the FMM model):
//!
//! * [`stencil`] — the multi-level cache-miss model of de la Cruz &
//!   Araya-Polo (eqs 3–7) with the conditional `nplanes` case analysis and
//!   linear-interpolation smoothing, plus the spatial-blocking extension
//!   (eq 15);
//! * [`fmm`] — computation costs of P2P and M2L (eqs 8–9) and the
//!   cache-oblivious memory bounds (eqs 10–14);
//! * [`spmv`] — the roofline bound for the SpMV scenario the workspace
//!   adds beyond the paper (memory-bound at ~2 flops per nonzero;
//!   blocking and threads deliberately ignored);
//! * [`traits`] — the [`traits::AnalyticalModel`] abstraction the hybrid
//!   model in `lam-core` stacks on.

pub mod fmm;
pub mod spmv;
pub mod stencil;
pub mod traits;

pub use fmm::FmmAnalyticalModel;
pub use spmv::SpmvRooflineModel;
pub use stencil::{BlockedStencilModel, StencilAnalyticalModel};
pub use traits::AnalyticalModel;
