//! Property-based tests for the analytical models.

use lam_analytical::fmm::FmmAnalyticalModel;
use lam_analytical::stencil::{nplanes, BlockedStencilModel, StencilAnalyticalModel};
use lam_analytical::traits::AnalyticalModel;
use lam_machine::arch::MachineDescription;
use proptest::prelude::*;

fn machine() -> MachineDescription {
    MachineDescription::blue_waters_xe6()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// nplanes is always within the paper's bracket [1, 2·P_read − 1] and
    /// monotone non-increasing in cache capacity.
    #[test]
    fn nplanes_bracket_and_monotonicity(
        jj in 4.0f64..600.0,
        ii in 8.0f64..600.0,
        c1 in 1.0f64..1e8,
        c2 in 1.0f64..1e8,
    ) {
        let s_read = ii * jj;
        let s_total = 3.0 * s_read + (ii - 2.0) * (jj - 2.0);
        let lo = c1.min(c2);
        let hi = c1.max(c2);
        let np_lo = nplanes(lo, s_total, s_read, ii, 1);
        let np_hi = nplanes(hi, s_total, s_read, ii, 1);
        prop_assert!((1.0..=5.0).contains(&np_lo));
        prop_assert!((1.0..=5.0).contains(&np_hi));
        prop_assert!(np_hi <= np_lo + 1e-9, "capacity {hi} gave {np_hi} > {np_lo} at {lo}");
    }

    /// The grid model predicts positive, finite times that scale with the
    /// number of points.
    #[test]
    fn stencil_model_positive_and_scales(i in 1u32..128, j in 8u32..256, k in 8u32..256) {
        let m = StencilAnalyticalModel::new(machine(), 4);
        let t = m.predict(&[i as f64, j as f64, k as f64]);
        prop_assert!(t.is_finite() && t > 0.0);
        let t2 = m.predict(&[i as f64, j as f64, 2.0 * k as f64]);
        prop_assert!(t2 > t, "doubling K must not speed things up");
    }

    /// Blocked model with the full-grid block equals the unblocked model.
    #[test]
    fn blocked_degenerates_to_unblocked(i in 1u32..64, j in 8u32..128, k in 8u32..128) {
        let g = StencilAnalyticalModel::new(machine(), 4);
        let b = BlockedStencilModel::new(machine(), 4);
        let (i, j, k) = (i as f64, j as f64, k as f64);
        let unblocked = g.predict(&[i, j, k]);
        let full = b.predict(&[i, j, k, i, j, k]);
        prop_assert!((unblocked - full).abs() < 1e-9 * unblocked.max(1e-30));
    }

    /// For a fixed tile shape, the model is linear in the number of tiles:
    /// doubling the grid in a blocked dimension doubles the prediction.
    /// (Shrinking blocks is NOT monotone — blocking can legitimately be
    /// predicted faster once the working set drops into a cache level.)
    #[test]
    fn linear_in_tile_count(
        jt in 2u32..32,
        kt in 2u32..32,
        bj in 2u32..32,
        bk in 2u32..32,
    ) {
        let b = BlockedStencilModel::new(machine(), 4);
        // Grid dimensions exact multiples of the tile.
        let j = (jt * bj) as f64;
        let k = (kt * bk) as f64;
        let one = b.predict(&[1.0, j, k, 1.0, bj as f64, bk as f64]);
        let two = b.predict(&[1.0, 2.0 * j, k, 1.0, bj as f64, bk as f64]);
        prop_assert!(
            (two - 2.0 * one).abs() < 1e-6 * two.max(1e-30),
            "doubling tiles: {two} vs 2x{one}"
        );
    }

    /// FMM model: positive, finite, monotone in N and k, and independent
    /// of t (it is a single-core model).
    #[test]
    fn fmm_model_structure(t in 1u32..=16, n in 1024u32..40000, q in 8u32..512, k in 2u32..=12) {
        prop_assume!(q <= n);
        let m = FmmAnalyticalModel::new(machine());
        let x = [t as f64, n as f64, q as f64, k as f64];
        let base = m.predict(&x);
        prop_assert!(base.is_finite() && base > 0.0);
        prop_assert_eq!(m.predict(&[1.0, n as f64, q as f64, k as f64]), base);
        prop_assert!(m.predict(&[t as f64, 2.0 * n as f64, q as f64, k as f64]) > base);
        if k < 12 {
            prop_assert!(m.predict(&[t as f64, n as f64, q as f64, (k + 1) as f64]) > base);
        }
    }
}
