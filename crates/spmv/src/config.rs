//! SpMV configurations and dataset spaces.
//!
//! The modeling vector is `X = (rows, nnz, rb, t)`: matrix dimension,
//! nonzeros per row (set by the band half-width, `nnz = 2·band + 1`),
//! row-block size of the tiled CSR loop, and worker threads. The paper
//! never measured SpMV — this space is the workspace's test that the
//! `Workload` abstraction extends beyond the two published scenarios.

use serde::{Deserialize, Serialize};

/// A concrete SpMV run configuration (the full modeling vector).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpmvConfig {
    /// Matrix rows (= columns; matrices are square).
    pub rows: usize,
    /// Band half-width: row `i` holds columns `i-band ..= i+band`.
    pub band: usize,
    /// Rows per block of the tiled CSR loop (`1 ..= rows`).
    pub row_block: usize,
    /// Worker threads.
    pub threads: usize,
}

impl SpmvConfig {
    /// Feature names of the modeling vector.
    pub fn feature_names() -> Vec<String> {
        vec!["rows".into(), "nnz".into(), "rb".into(), "t".into()]
    }

    /// Feature vector `(rows, nnz_per_row, row_block, threads)` as `f64`.
    pub fn features(&self) -> Vec<f64> {
        vec![
            self.rows as f64,
            self.nnz_per_row() as f64,
            self.row_block as f64,
            self.threads as f64,
        ]
    }

    /// Nonzeros per interior row, `2·band + 1` clipped to the dimension.
    pub fn nnz_per_row(&self) -> usize {
        (2 * self.band + 1).min(self.rows)
    }

    /// Modeled total nonzeros, `rows · nnz_per_row` (boundary rows store
    /// slightly fewer; the deficit is `O(band²)` against `O(rows·band)`).
    pub fn total_nnz(&self) -> usize {
        self.rows * self.nnz_per_row()
    }

    /// Clamp the row block into `[1, rows]` and threads to `≥ 1`.
    pub fn normalized(mut self) -> Self {
        self.row_block = self.row_block.clamp(1, self.rows.max(1));
        self.threads = self.threads.max(1);
        self
    }

    /// Validity: nonzero dimension, row block within the matrix, at least
    /// one thread.
    pub fn is_valid(&self) -> bool {
        self.rows >= 1 && (1..=self.rows).contains(&self.row_block) && self.threads >= 1
    }

    /// Stable configuration hash for the noise model.
    pub fn hash64(&self) -> u64 {
        lam_machine::noise::hash_config(&[
            self.rows as u64,
            self.band as u64,
            self.row_block as u64,
            self.threads as u64,
        ])
    }
}

/// An enumerable SpMV configuration space.
#[derive(Debug, Clone)]
pub struct SpmvSpace {
    /// Label for reports.
    pub name: &'static str,
    configs: Vec<SpmvConfig>,
}

impl SpmvSpace {
    /// All configurations in the space.
    pub fn configs(&self) -> &[SpmvConfig] {
        &self.configs
    }

    /// Number of configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// `true` when empty (never for the shipped spaces).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }
}

fn cross(
    name: &'static str,
    rows: &[usize],
    bands: &[usize],
    row_blocks: &[usize],
    max_threads: usize,
) -> SpmvSpace {
    let mut configs = Vec::new();
    for &n in rows {
        for &band in bands {
            for &rb in row_blocks {
                for t in 1..=max_threads {
                    let c = SpmvConfig {
                        rows: n,
                        band,
                        row_block: rb,
                        threads: t,
                    }
                    .normalized();
                    debug_assert!(c.is_valid());
                    configs.push(c);
                }
            }
        }
    }
    SpmvSpace { name, configs }
}

/// The full SpMV space: rows `16Ki … 128Ki`, band half-widths `1 … 32`
/// (3 … 65 nonzeros per row), row blocks `64 / 1Ki / 16Ki`, threads
/// `1 … 8` — 576 configurations, comparable to the paper's stencil grid.
pub fn space_spmv() -> SpmvSpace {
    cross(
        "spmv",
        &[16_384, 32_768, 65_536, 131_072],
        &[1, 2, 4, 8, 16, 32],
        &[64, 1024, 16_384],
        8,
    )
}

/// A reduced space for quick tests, examples, and serving smoke runs.
pub fn space_small() -> SpmvSpace {
    cross(
        "spmv-small",
        &[2048, 4096, 8192, 16_384],
        &[1, 4, 16],
        &[64, 1024],
        4,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_round_trip() {
        let c = SpmvConfig {
            rows: 4096,
            band: 4,
            row_block: 64,
            threads: 2,
        };
        assert_eq!(c.nnz_per_row(), 9);
        assert_eq!(c.total_nnz(), 4096 * 9);
        assert_eq!(c.features(), vec![4096.0, 9.0, 64.0, 2.0]);
        assert_eq!(SpmvConfig::feature_names().len(), 4);
    }

    #[test]
    fn nnz_clips_to_dimension() {
        let c = SpmvConfig {
            rows: 8,
            band: 100,
            row_block: 8,
            threads: 1,
        };
        assert_eq!(c.nnz_per_row(), 8);
    }

    #[test]
    fn normalization_clamps() {
        let c = SpmvConfig {
            rows: 16,
            band: 1,
            row_block: 0,
            threads: 0,
        }
        .normalized();
        assert!(c.is_valid());
        assert_eq!(c.row_block, 1);
        assert_eq!(c.threads, 1);
        let c = SpmvConfig {
            rows: 16,
            band: 1,
            row_block: 4096,
            threads: 2,
        }
        .normalized();
        assert_eq!(c.row_block, 16);
    }

    #[test]
    fn space_shapes() {
        let full = space_spmv();
        assert_eq!(full.len(), 4 * 6 * 3 * 8);
        assert!(full.configs().iter().all(|c| c.is_valid()));
        let small = space_small();
        assert_eq!(small.len(), 4 * 3 * 2 * 4);
        assert!(small.configs().iter().all(|c| c.is_valid()));
    }

    #[test]
    fn hash_distinguishes_configs() {
        let a = SpmvConfig {
            rows: 4096,
            band: 4,
            row_block: 64,
            threads: 2,
        };
        let b = SpmvConfig { band: 8, ..a };
        assert_ne!(a.hash64(), b.hash64());
        assert_eq!(a.hash64(), a.hash64());
    }
}
