//! Runnable CSR SpMV kernels: serial, row-blocked, and rayon-parallel.
//!
//! All three produce bit-identical results — the blocked variant only
//! restructures the loop (the tuning knob the oracle models), and the
//! parallel variant partitions output rows across threads, so every
//! `y[i]` is accumulated by exactly one worker in the same order as the
//! serial loop.

use crate::matrix::CsrMatrix;
use rayon::prelude::*;

/// Flops per stored nonzero: one multiply, one add.
pub const FLOPS_PER_NNZ: f64 = 2.0;

/// Accumulate one row's dot product.
#[inline]
fn row_dot(a: &CsrMatrix, x: &[f64], i: usize) -> f64 {
    let mut acc = 0.0;
    for k in a.row_ptr[i]..a.row_ptr[i + 1] {
        acc += a.values[k] * x[a.col_idx[k] as usize];
    }
    acc
}

/// `y = A x`, one pass over the rows.
pub fn spmv(a: &CsrMatrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.n, "x length must match matrix columns");
    assert_eq!(y.len(), a.n, "y length must match matrix rows");
    for (i, slot) in y.iter_mut().enumerate() {
        *slot = row_dot(a, x, i);
    }
}

/// `y = A x` with the row loop tiled into blocks of `row_block` rows —
/// the loop structure the tuning space sweeps. Result is bit-identical to
/// [`spmv`].
pub fn spmv_blocked(a: &CsrMatrix, x: &[f64], y: &mut [f64], row_block: usize) {
    assert_eq!(x.len(), a.n, "x length must match matrix columns");
    assert_eq!(y.len(), a.n, "y length must match matrix rows");
    let rb = row_block.clamp(1, a.n.max(1));
    for (b, chunk) in y.chunks_mut(rb).enumerate() {
        let base = b * rb;
        for (off, slot) in chunk.iter_mut().enumerate() {
            *slot = row_dot(a, x, base + off);
        }
    }
}

/// `y = A x` with row blocks fanned across the rayon pool. Each output
/// chunk is owned by one worker, so the result is bit-identical to the
/// serial kernels.
pub fn spmv_parallel(a: &CsrMatrix, x: &[f64], y: &mut [f64], row_block: usize) {
    assert_eq!(x.len(), a.n, "x length must match matrix columns");
    assert_eq!(y.len(), a.n, "y length must match matrix rows");
    let rb = row_block.clamp(1, a.n.max(1));
    y.par_chunks_mut(rb).enumerate().for_each(|(b, chunk)| {
        let base = b * rb;
        for (off, slot) in chunk.iter_mut().enumerate() {
            *slot = row_dot(a, x, base + off);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::banded;

    fn vec_x(n: usize) -> Vec<f64> {
        (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.25).collect()
    }

    /// Dense reference: materialize the band and multiply naively.
    fn dense_reference(a: &CsrMatrix, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; a.n];
        for (i, slot) in y.iter_mut().enumerate() {
            for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                *slot += a.values[k] * x[a.col_idx[k] as usize];
            }
        }
        y
    }

    #[test]
    fn serial_matches_dense_reference() {
        let a = banded(33, 3, 5);
        let x = vec_x(a.n);
        let mut y = vec![0.0; a.n];
        spmv(&a, &x, &mut y);
        assert_eq!(y, dense_reference(&a, &x));
    }

    #[test]
    fn blocked_and_parallel_bit_identical_to_serial() {
        let a = banded(257, 4, 11);
        let x = vec_x(a.n);
        let mut y_serial = vec![0.0; a.n];
        spmv(&a, &x, &mut y_serial);
        for rb in [1, 7, 64, 256, 10_000] {
            let mut y_blocked = vec![0.0; a.n];
            spmv_blocked(&a, &x, &mut y_blocked, rb);
            let mut y_par = vec![0.0; a.n];
            spmv_parallel(&a, &x, &mut y_par, rb);
            for i in 0..a.n {
                assert_eq!(y_serial[i].to_bits(), y_blocked[i].to_bits(), "rb {rb}");
                assert_eq!(y_serial[i].to_bits(), y_par[i].to_bits(), "rb {rb}");
            }
        }
    }

    #[test]
    fn identity_band_zero_scales_x() {
        // band = 0 gives a diagonal matrix: y[i] = a_ii * x[i].
        let a = banded(16, 0, 3);
        let x = vec_x(a.n);
        let mut y = vec![0.0; a.n];
        spmv(&a, &x, &mut y);
        for i in 0..a.n {
            assert_eq!(y[i], a.values[i] * x[i]);
        }
    }

    #[test]
    #[should_panic(expected = "x length")]
    fn shape_mismatch_panics() {
        let a = banded(8, 1, 1);
        let x = vec![0.0; 7];
        let mut y = vec![0.0; 8];
        spmv(&a, &x, &mut y);
    }
}
