//! # lam-spmv
//!
//! The sparse matrix–vector multiply application scenario — the third
//! workload of the workspace, and the first one the source paper never
//! measured. It exists to test the claim the `Workload` abstraction was
//! built on: adding a scenario is one trait impl, and the entire pipeline
//! (dataset sweep, §VII evaluation, figure runners, model serving)
//! follows from it.
//!
//! * [`matrix`] — CSR storage and deterministic banded-matrix generation;
//! * [`kernel`] — runnable serial / row-blocked / rayon-parallel SpMV,
//!   all bit-identical;
//! * [`config`] — the `(rows, nnz, rb, t)` tuning space;
//! * [`oracle`] — the simulated-measurement oracle over
//!   `lam_machine`'s cache/contention/noise models;
//! * [`workload`] — [`workload::SpmvWorkload`], the `Workload` impl.
//!
//! The matching untuned analytical model is
//! [`lam_analytical::spmv::SpmvRooflineModel`]: SpMV runs ~2 flops per
//! stored nonzero against ~12 streamed bytes, far below the Blue Waters
//! ridge point, so the roofline bound finally earns its keep in a model
//! rather than just documentation.

pub mod config;
pub mod kernel;
pub mod matrix;
pub mod oracle;
pub mod workload;

pub use config::{space_small, space_spmv, SpmvConfig, SpmvSpace};
pub use matrix::CsrMatrix;
pub use oracle::SpmvOracle;
pub use workload::SpmvWorkload;
