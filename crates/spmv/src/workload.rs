//! [`Workload`] implementation for the SpMV application: one value ties
//! together a configuration space, the simulated-measurement oracle, and
//! the roofline analytical model.
//!
//! This is the workspace's third scenario — the one the paper never
//! measured — so it doubles as the proof that the `Workload` abstraction
//! scales: the whole pipeline (dataset sweep, evaluation protocol, figure
//! runners, serving) picks it up from this one impl.

use crate::config::{SpmvConfig, SpmvSpace};
use crate::oracle::SpmvOracle;
use lam_analytical::spmv::SpmvRooflineModel;
use lam_analytical::traits::AnalyticalModel;
use lam_core::catalog::{CatalogError, WorkloadCatalog, SERVE_NOISE_SEED};
use lam_core::hybrid::HybridConfig;
use lam_core::workload::Workload;
use lam_machine::arch::MachineDescription;

/// The SpMV scenario: an [`SpmvSpace`] evaluated by an [`SpmvOracle`] on
/// one machine.
#[derive(Debug, Clone)]
pub struct SpmvWorkload {
    oracle: SpmvOracle,
    space: SpmvSpace,
}

impl SpmvWorkload {
    /// Build the scenario on a machine with the given noise seed.
    pub fn new(machine: MachineDescription, space: SpmvSpace, noise_seed: u64) -> Self {
        Self {
            oracle: SpmvOracle::new(machine, noise_seed),
            space,
        }
    }

    /// Disable measurement noise (model validation, conformance tests).
    pub fn without_noise(mut self) -> Self {
        self.oracle = self.oracle.without_noise();
        self
    }

    /// The underlying oracle.
    pub fn oracle(&self) -> &SpmvOracle {
        &self.oracle
    }

    /// The configuration space.
    pub fn space(&self) -> &SpmvSpace {
        &self.space
    }
}

impl Workload for SpmvWorkload {
    type Config = SpmvConfig;

    fn name(&self) -> &str {
        self.space.name
    }

    fn feature_names(&self) -> Vec<String> {
        SpmvConfig::feature_names()
    }

    fn param_space(&self) -> &[SpmvConfig] {
        self.space.configs()
    }

    fn features(&self, cfg: &SpmvConfig) -> Vec<f64> {
        cfg.features()
    }

    fn execution_time(&self, cfg: &SpmvConfig) -> f64 {
        self.oracle.execution_time(cfg)
    }

    fn problem_size(&self, cfg: &SpmvConfig) -> f64 {
        cfg.total_nnz() as f64
    }

    /// The untuned roofline bound (sweeps matched to the oracle's);
    /// blocking and thread effects are deliberately left for the hybrid
    /// model to learn.
    fn analytical_model(&self) -> Box<dyn AnalyticalModel> {
        Box::new(SpmvRooflineModel::new(
            self.oracle.machine().clone(),
            self.oracle.sweeps,
        ))
    }

    /// SpMV runtimes span decades across matrix sizes, so the hybrid
    /// stacks `ln(am)` like FMM does.
    fn hybrid_config(&self) -> HybridConfig {
        HybridConfig {
            log_feature: true,
            ..HybridConfig::default()
        }
    }
}

/// Register the SpMV scenarios' servable descriptors: the full
/// `(rows, nnz, rb, t)` space as `spmv` and the reduced smoke-run space
/// as `spmv-small`, both on the Blue Waters description with the shared
/// [`SERVE_NOISE_SEED`].
pub fn register_servable(catalog: &WorkloadCatalog) -> Result<(), CatalogError> {
    for (name, space) in [
        ("spmv", crate::config::space_spmv()),
        ("spmv-small", crate::config::space_small()),
    ] {
        match catalog.register_workload(
            name,
            SpmvWorkload::new(
                MachineDescription::blue_waters_xe6(),
                space,
                SERVE_NOISE_SEED,
            ),
        ) {
            // Idempotent per name: an earlier registration (a repeat call,
            // or a user claiming one name first) wins; the *other* names
            // still register.
            Ok(_) | Err(CatalogError::Duplicate(_)) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{space_small, space_spmv};

    fn workload(space: SpmvSpace) -> SpmvWorkload {
        SpmvWorkload::new(MachineDescription::blue_waters_xe6(), space, 13)
    }

    #[test]
    fn dataset_matches_space() {
        let w = workload(space_small());
        let d = w.generate_dataset();
        assert_eq!(d.len(), w.space().len());
        assert_eq!(d.n_features(), 4);
        assert_eq!(w.generate_dataset(), d);
    }

    #[test]
    fn analytical_model_predicts_on_features() {
        let w = workload(space_spmv());
        let am = w.analytical_model();
        let x = w.features(&w.param_space()[0]);
        assert!(am.predict(&x) > 0.0);
    }

    #[test]
    fn analytical_model_is_correlated_but_untuned() {
        // The roofline bound must sit within an order of magnitude of the
        // noise-free oracle at one thread (correlated), yet not match it
        // (untuned) — the regime hybrid stacking exploits.
        let w = workload(space_small()).without_noise();
        let am = w.analytical_model();
        for cfg in w.param_space().iter().filter(|c| c.threads == 1) {
            let predicted = am.predict(&w.features(cfg));
            let actual = w.execution_time(cfg);
            let ratio = predicted / actual;
            assert!((0.1..=10.0).contains(&ratio), "ratio {ratio} at {cfg:?}");
        }
    }

    #[test]
    fn problem_size_is_total_nnz() {
        let w = workload(space_small());
        let c = SpmvConfig {
            rows: 4096,
            band: 4,
            row_block: 64,
            threads: 1,
        };
        assert_eq!(w.problem_size(&c), (4096 * 9) as f64);
    }
}
