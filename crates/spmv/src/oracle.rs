//! Simulated-execution oracle for SpMV: reproducible ground-truth
//! execution times over a [`MachineDescription`].
//!
//! SpMV streams the CSR value/index arrays once per sweep and gathers the
//! input vector through the cache hierarchy, so the coarse structure is
//! `max(Tflops, Tmem)` like the roofline model — but the oracle layers on
//! what the untuned roofline ignores and the hybrid model must learn:
//!
//! * gather residency of the active `x` window (row block + band wide),
//! * prefetcher efficiency driven by the per-row streak length,
//! * loop/block overheads that punish tiny row blocks and short rows,
//! * reduction-dependence stalls on very short rows,
//! * thread scaling with bandwidth saturation and block-granular
//!   load imbalance,
//! * multiplicative lognormal measurement noise.

use crate::config::{SpmvConfig, SpmvSpace};
use crate::kernel::FLOPS_PER_NNZ;
use lam_data::Dataset;
use lam_machine::arch::MachineDescription;
use lam_machine::contention::ThreadModel;
use lam_machine::noise::NoiseModel;

/// Sweeps (repeated `y = A x` applications) per modeled run — the
/// iterative-solver setting. The analytical model must agree on this
/// count, exactly as the stencil model agrees on `timesteps`.
pub const DEFAULT_SWEEPS: usize = 8;

/// SpMV ground-truth time model over a machine.
#[derive(Debug, Clone)]
pub struct SpmvOracle {
    machine: MachineDescription,
    thread_model: ThreadModel,
    noise: NoiseModel,
    /// Number of `y = A x` sweeps the modeled run executes.
    pub sweeps: usize,
}

impl SpmvOracle {
    /// Oracle with the default thread model and 3% measurement noise.
    pub fn new(machine: MachineDescription, noise_seed: u64) -> Self {
        Self {
            machine,
            thread_model: ThreadModel::default(),
            noise: NoiseModel::new(0.03, noise_seed),
            sweeps: DEFAULT_SWEEPS,
        }
    }

    /// Disable measurement noise (model validation, conformance tests).
    pub fn without_noise(mut self) -> Self {
        self.noise = NoiseModel::none();
        self
    }

    /// The machine this oracle simulates.
    pub fn machine(&self) -> &MachineDescription {
        &self.machine
    }

    /// Deterministic "measured" execution time in seconds for one
    /// configuration (all sweeps).
    pub fn execution_time(&self, cfg: &SpmvConfig) -> f64 {
        let cfg = cfg.normalized();
        let serial = self.serial_time(&cfg);
        let mem_share = self.memory_share(&cfg);
        let mut t = self
            .thread_model
            .scale_time(serial, cfg.threads, mem_share, &self.machine);
        if cfg.threads > 1 {
            // Work is handed out in whole row blocks: when the block count
            // is not a multiple of the thread count, the tail round runs
            // under-subscribed and every other thread idles.
            let blocks = (cfg.rows as f64 / cfg.row_block as f64).ceil();
            let t_f = cfg.threads as f64;
            t *= (blocks / t_f).ceil() * t_f / blocks;
            // Fork/join barrier once per sweep.
            t += self.sweeps as f64 * self.thread_model.sync_overhead_s * cfg.threads as f64;
        }
        self.noise.apply(t, cfg.hash64())
    }

    /// Single-thread detailed time for one sweep, times `sweeps`.
    fn serial_time(&self, cfg: &SpmvConfig) -> f64 {
        let m = &self.machine;
        let n = cfg.rows as f64;
        let nnz_row = cfg.nnz_per_row() as f64;
        let nnz = n * nnz_row;

        // --- Compute: 2 flops per nonzero, but each row is a loop-carried
        // reduction; short rows never fill the FMA pipeline.
        let fma_eff = 0.40 + 0.45 * nnz_row / (nnz_row + 8.0);
        let t_flop = nnz * FLOPS_PER_NNZ * m.time_per_flop() / fma_eff;

        // --- Streamed CSR traffic: 8-byte value + 4-byte column index per
        // nonzero = 1.5 elements. The arrays are perfectly sequential;
        // longer rows let the hardware prefetcher hide more latency.
        let prefetch_eff = nnz_row / (nnz_row + 4.0);
        let beta_stream = m.beta_mem() * (1.0 - 0.18 * prefetch_eff);
        let t_stream = nnz * 1.5 * beta_stream;

        // --- Gather: one `x` access per nonzero. The active window while
        // sweeping one row block spans `row_block + 2·band` elements; it is
        // served by the smallest cache level that holds it alongside the
        // streams (half-capacity rule), falling through to memory.
        let window_bytes = (cfg.row_block as f64 + 2.0 * cfg.band as f64) * m.element_bytes as f64;
        let mut beta_x = m.beta_mem();
        for (li, level) in m.caches.iter().enumerate() {
            if window_bytes <= 0.5 * level.size_bytes as f64 {
                beta_x = m.beta_cache(li);
                break;
            }
        }
        let t_gather = nnz * beta_x;

        // --- Per-row traffic: y store (write-allocate fill + write-back)
        // and one row_ptr read.
        let t_rows = n * 3.0 * m.beta_mem();

        // --- Loop overhead: row loop control plus per-block setup; tiny
        // row blocks explode the block count.
        let blocks = (n / cfg.row_block as f64).ceil();
        let overhead = (n * 6.0 + blocks * 90.0) * m.cycle_seconds();

        let t_mem = t_stream + t_gather + t_rows;
        (t_flop.max(t_mem) + overhead) * self.sweeps as f64
    }

    /// Memory-bound share of the runtime (drives the thread-scaling mix).
    fn memory_share(&self, _cfg: &SpmvConfig) -> f64 {
        let m = &self.machine;
        let t_flop = FLOPS_PER_NNZ * m.time_per_flop();
        let t_mem = 2.5 * m.beta_mem();
        (t_mem / (t_mem + t_flop)).clamp(0.0, 1.0)
    }
}

/// Convenience mirroring `lam_stencil::oracle::generate_dataset`: wrap the
/// machine and space in a
/// [`SpmvWorkload`](crate::workload::SpmvWorkload) and generate its
/// dataset (rayon-parallel, deterministic for a fixed seed).
pub fn generate_dataset(
    machine: &MachineDescription,
    space: &SpmvSpace,
    noise_seed: u64,
) -> Dataset {
    use lam_core::workload::Workload as _;
    crate::workload::SpmvWorkload::new(machine.clone(), space.clone(), noise_seed)
        .generate_dataset()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::space_small;

    fn oracle() -> SpmvOracle {
        SpmvOracle::new(MachineDescription::blue_waters_xe6(), 13)
    }

    fn cfg(rows: usize, band: usize, rb: usize, t: usize) -> SpmvConfig {
        SpmvConfig {
            rows,
            band,
            row_block: rb,
            threads: t,
        }
    }

    #[test]
    fn time_positive_and_deterministic() {
        let o = oracle();
        let c = cfg(8192, 4, 256, 1);
        let t = o.execution_time(&c);
        assert!(t > 0.0);
        assert_eq!(t, o.execution_time(&c));
    }

    #[test]
    fn more_nonzeros_cost_more() {
        let o = oracle().without_noise();
        let narrow = o.execution_time(&cfg(16_384, 1, 1024, 1));
        let wide = o.execution_time(&cfg(16_384, 32, 1024, 1));
        assert!(wide > narrow * 5.0, "narrow {narrow} wide {wide}");
        let small = o.execution_time(&cfg(4096, 4, 1024, 1));
        let large = o.execution_time(&cfg(65_536, 4, 1024, 1));
        assert!(large > small * 8.0, "small {small} large {large}");
    }

    #[test]
    fn spmv_is_memory_bound_on_blue_waters() {
        let o = oracle();
        let share = o.memory_share(&cfg(16_384, 4, 1024, 1));
        assert!(share > 0.5, "memory share {share}");
    }

    #[test]
    fn tiny_row_blocks_pay_overhead() {
        let o = oracle().without_noise();
        let tuned = o.execution_time(&cfg(65_536, 1, 1024, 1));
        let tiny = o.execution_time(&cfg(65_536, 1, 1, 1));
        assert!(tiny > tuned * 1.2, "tiny {tiny} tuned {tuned}");
    }

    #[test]
    fn threads_speed_up_large_matrices_sublinearly() {
        let o = oracle().without_noise();
        let t1 = o.execution_time(&cfg(131_072, 8, 1024, 1));
        let t4 = o.execution_time(&cfg(131_072, 8, 1024, 4));
        assert!(t4 < t1, "t1 {t1} t4 {t4}");
        assert!(t4 > t1 / 8.0, "superlinear scaling is a bug: {t1} vs {t4}");
    }

    #[test]
    fn one_giant_block_cannot_parallelize() {
        // A single row block is one unit of work: threads cannot help.
        let o = oracle().without_noise();
        let serial = o.execution_time(&cfg(16_384, 4, 16_384, 1));
        let threaded = o.execution_time(&cfg(16_384, 4, 16_384, 8));
        assert!(
            threaded > serial * 0.9,
            "serial {serial} threaded {threaded}"
        );
    }

    #[test]
    fn noise_is_small_but_present() {
        let noisy = oracle();
        let clean = oracle().without_noise();
        let c = cfg(8192, 4, 256, 2);
        let ratio = noisy.execution_time(&c) / clean.execution_time(&c);
        assert!(ratio != 1.0);
        assert!((ratio - 1.0).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn free_generate_dataset_covers_space() {
        let machine = MachineDescription::blue_waters_xe6();
        let s = space_small();
        let d = generate_dataset(&machine, &s, 42);
        assert_eq!(d.len(), s.len());
        assert_eq!(d, generate_dataset(&machine, &s, 42));
    }
}
