//! Compressed-sparse-row matrices and deterministic synthetic banded
//! generation.
//!
//! The SpMV scenario models iterative-solver workloads: a square banded
//! matrix (the sparsity pattern of a discretized PDE operator) applied to
//! a dense vector over and over. Matrices are generated deterministically
//! from a seed so every dataset, test, and served model agrees on the
//! ground truth bit for bit.

use lam_machine::noise::mix;

/// A square sparse matrix in CSR layout.
///
/// Column indices are `u32` (4 bytes) — half the width of a value — which
/// is both the common production choice and the traffic ratio the oracle
/// and the roofline model charge per nonzero.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    /// Rows (= columns; the matrix is square).
    pub n: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes row `i`'s nonzeros.
    pub row_ptr: Vec<usize>,
    /// Column index of each nonzero.
    pub col_idx: Vec<u32>,
    /// Value of each nonzero.
    pub values: Vec<f64>,
}

impl CsrMatrix {
    /// Total stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Nonzeros in row `i`.
    pub fn nnz_in_row(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Structural sanity: monotone row pointers, in-bounds columns,
    /// matching index/value lengths.
    pub fn validate(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.n + 1 {
            return Err(format!(
                "row_ptr has {} entries for {} rows",
                self.row_ptr.len(),
                self.n
            ));
        }
        if self.col_idx.len() != self.values.len() {
            return Err("col_idx and values lengths differ".to_string());
        }
        if *self.row_ptr.last().unwrap_or(&0) != self.values.len() {
            return Err("row_ptr does not cover all nonzeros".to_string());
        }
        for w in self.row_ptr.windows(2) {
            if w[1] < w[0] {
                return Err("row_ptr not monotone".to_string());
            }
        }
        if self.col_idx.iter().any(|&c| c as usize >= self.n) {
            return Err("column index out of bounds".to_string());
        }
        Ok(())
    }
}

/// Deterministic value for entry `(i, j)` of the seeded matrix, in
/// `[0.5, 1.5)` — bounded away from zero so row sums (and therefore SpMV
/// results) never cancel to non-reproducible tiny values.
fn entry_value(seed: u64, i: usize, j: usize) -> f64 {
    let h = mix(mix(seed, i as u64), j as u64);
    0.5 + (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Build the `n × n` banded matrix with half-bandwidth `band`: row `i`
/// holds nonzeros at columns `i-band ..= i+band` clipped to the matrix,
/// values seeded deterministically. `band = 0` is the diagonal.
pub fn banded(n: usize, band: usize, seed: u64) -> CsrMatrix {
    assert!(n >= 1, "matrix must have at least one row");
    let mut row_ptr = Vec::with_capacity(n + 1);
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    row_ptr.push(0);
    for i in 0..n {
        let lo = i.saturating_sub(band);
        let hi = (i + band).min(n - 1);
        for j in lo..=hi {
            col_idx.push(j as u32);
            values.push(entry_value(seed, i, j));
        }
        row_ptr.push(col_idx.len());
    }
    CsrMatrix {
        n,
        row_ptr,
        col_idx,
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banded_structure() {
        let a = banded(8, 1, 42);
        a.validate().unwrap();
        // Tridiagonal: interior rows have 3 nonzeros, the two edge rows 2.
        assert_eq!(a.nnz(), 3 * 8 - 2);
        assert_eq!(a.nnz_in_row(0), 2);
        assert_eq!(a.nnz_in_row(4), 3);
        assert_eq!(a.nnz_in_row(7), 2);
    }

    #[test]
    fn diagonal_matrix() {
        let a = banded(5, 0, 1);
        a.validate().unwrap();
        assert_eq!(a.nnz(), 5);
        assert!(a.col_idx.iter().enumerate().all(|(i, &c)| c as usize == i));
    }

    #[test]
    fn wide_band_clips_to_dense() {
        let a = banded(4, 10, 7);
        a.validate().unwrap();
        assert_eq!(a.nnz(), 16);
    }

    #[test]
    fn generation_is_deterministic_and_seeded() {
        let a = banded(16, 2, 9);
        let b = banded(16, 2, 9);
        assert_eq!(a, b);
        let c = banded(16, 2, 10);
        assert_ne!(a.values, c.values);
        assert_eq!(a.col_idx, c.col_idx, "seed changes values, not structure");
    }

    #[test]
    fn values_bounded_away_from_zero() {
        let a = banded(64, 4, 3);
        assert!(a.values.iter().all(|&v| (0.5..1.5).contains(&v)));
    }
}
