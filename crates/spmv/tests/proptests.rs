//! Property-based tests: every tuned SpMV variant computes exactly the
//! serial result, banded generation is structurally sound, and the oracle
//! behaves like a time.

use lam_machine::arch::MachineDescription;
use lam_spmv::config::SpmvConfig;
use lam_spmv::kernel::{spmv, spmv_blocked, spmv_parallel};
use lam_spmv::matrix::banded;
use lam_spmv::oracle::SpmvOracle;
use proptest::prelude::*;

fn vector(n: usize, salt: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E3779B9).wrapping_add(salt);
            1.0 + ((h % 13) as f64) * 0.125
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked and parallel kernels ≡ serial kernel, bit for bit, for any
    /// matrix shape and row-block size.
    #[test]
    fn tuned_kernels_equal_serial(
        n in 1usize..200,
        band in 0usize..8,
        rb in 1usize..64,
        salt in 0u64..100,
    ) {
        let a = banded(n, band, salt);
        let x = vector(n, salt);
        let mut y_serial = vec![0.0; n];
        spmv(&a, &x, &mut y_serial);
        let mut y_blocked = vec![0.0; n];
        spmv_blocked(&a, &x, &mut y_blocked, rb);
        let mut y_par = vec![0.0; n];
        spmv_parallel(&a, &x, &mut y_par, rb);
        for i in 0..n {
            prop_assert_eq!(y_serial[i].to_bits(), y_blocked[i].to_bits());
            prop_assert_eq!(y_serial[i].to_bits(), y_par[i].to_bits());
        }
    }

    /// Banded matrices validate and store the expected nonzero count:
    /// full band in the interior, clipped at the edges.
    #[test]
    fn banded_structure_sound(n in 1usize..300, band in 0usize..12, seed in 0u64..50) {
        let a = banded(n, band, seed);
        prop_assert!(a.validate().is_ok());
        let expect: usize = (0..n)
            .map(|i| (i + band).min(n - 1) + 1 - i.saturating_sub(band))
            .sum();
        prop_assert_eq!(a.nnz(), expect);
    }

    /// Oracle times are positive, finite, and deterministic everywhere in
    /// (a superset of) the tuning space.
    #[test]
    fn oracle_is_a_time(
        rows_exp in 8u32..16,
        band in 0usize..40,
        rb in 1usize..40_000,
        threads in 1usize..12,
        seed in 0u64..1000,
    ) {
        let o = SpmvOracle::new(MachineDescription::blue_waters_xe6(), seed);
        let cfg = SpmvConfig {
            rows: 1usize << rows_exp,
            band,
            row_block: rb,
            threads,
        };
        let t = o.execution_time(&cfg);
        prop_assert!(t.is_finite() && t > 0.0, "t = {}", t);
        prop_assert_eq!(t, o.execution_time(&cfg));
    }
}
