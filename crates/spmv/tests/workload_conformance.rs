//! The shared `lam-core` Workload conformance suite, run against both
//! SpMV configuration spaces — the same contract `StencilWorkload` and
//! `FmmWorkload` pass.

use lam_core::workload::conformance;
use lam_machine::arch::MachineDescription;
use lam_spmv::config::{space_small, space_spmv, SpmvSpace};
use lam_spmv::workload::SpmvWorkload;

fn check(space: fn() -> SpmvSpace) {
    let machine = MachineDescription::blue_waters_xe6();
    let make = || SpmvWorkload::new(machine.clone(), space(), 42);
    let noise_free = make().without_noise();
    conformance::assert_workload_conformance(make, &noise_free);
}

#[test]
fn spmv_space_conforms() {
    check(space_spmv);
}

#[test]
fn spmv_small_space_conforms() {
    check(space_small);
}
