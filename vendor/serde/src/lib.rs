//! Vendored serialization shim exposing the subset of the `serde` API this
//! workspace uses: the `Serialize`/`Deserialize` traits (as bounds for
//! `serde_json`-style persistence) and their derive macros.
//!
//! The build environment has no network access to crates.io, so the real
//! `serde` cannot be fetched. Instead of serde's visitor architecture,
//! this shim round-trips through an owned JSON-like [`Value`] tree — ample
//! for the workspace's needs (figure reports, datasets, fitted models) and
//! two orders of magnitude less code.
//!
//! Integers are preserved exactly ([`Number`] keeps `u64`/`i64` lossless);
//! floats round-trip via Rust's shortest-exact `Display`/`FromStr`.
//!
//! Derived struct deserialization treats an *absent* field as
//! [`Value::Null`] before reporting an error (see [`__get_field`]), so
//! `Option<T>` fields tolerate missing keys — required by the `lam-serve`
//! HTTP API, whose request bodies carry optional fields (e.g. a model
//! version), and harmless for mandatory fields, which still fail with a
//! "missing field" error because they reject `Null`.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-compatible number, kept lossless for integers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Binary floating point.
    Float(f64),
}

impl Number {
    /// Value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// Value as `u64` when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(_) => None,
            Number::Float(v) => {
                if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 {
                    Some(v as u64)
                } else {
                    None
                }
            }
        }
    }

    /// Value as `i64` when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v) => {
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 {
                    Some(v as i64)
                } else {
                    None
                }
            }
        }
    }
}

/// An owned JSON-like tree, the interchange format of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object's fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrow as an array's elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as a string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// One-word description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// "expected X while deserializing Y, found Z" error.
    pub fn expected(what: &str, ty: &str, found: &Value) -> Self {
        Self::custom(format!(
            "expected {what} while deserializing {ty}, found {}",
            found.kind()
        ))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    /// Convert to the interchange tree.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse from the interchange tree.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

pub mod de {
    //! Deserialization re-exports mirroring `serde::de`.
    pub use super::DeError;

    /// Owned deserialization marker, as in `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

/// Fetch and deserialize a struct field (used by derived code).
///
/// An absent field deserializes as [`Value::Null`] when the target type
/// accepts it (i.e. `Option<T>` fields default to `None`); types that
/// reject `Null` keep the "missing field" diagnostic.
#[doc(hidden)]
pub fn __get_field<T: Deserialize>(
    fields: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, DeError> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::custom(format!("in field `{name}` of {ty}: {e}")))
        }
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError::custom(format!("missing field `{name}` in {ty}"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = match value {
                    Value::Number(n) => n.as_u64(),
                    _ => None,
                };
                n.and_then(|v| <$t>::try_from(v).ok()).ok_or_else(|| {
                    DeError::expected("unsigned integer", stringify!($t), value)
                })
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = match value {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                };
                n.and_then(|v| <$t>::try_from(v).ok()).ok_or_else(|| {
                    DeError::expected("integer", stringify!($t), value)
                })
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(DeError::expected("number", "f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Number(n) => Ok(n.as_f64() as f32),
            other => Err(DeError::expected("number", "f32", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| DeError::expected("array", "fixed-size array", value))?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", "tuple", value))?;
                if items.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {}, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        // u64 beyond 2^53 stays exact.
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.0f64, 2.5, -3.25];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        let arr = [0.5f64, 0.25, 0.125];
        assert_eq!(<[f64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
        let pair = ("x".to_string(), 9.0f64);
        assert_eq!(<(String, f64)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn type_errors_reported() {
        assert!(u32::from_value(&Value::String("no".into())).is_err());
        assert!(u8::from_value(&300u64.to_value()).is_err());
        assert!(<[f64; 3]>::from_value(&vec![1.0f64].to_value()).is_err());
    }

    #[test]
    fn missing_field_is_none_for_option_and_error_otherwise() {
        let fields = vec![("present".to_string(), Value::Number(Number::PosInt(7)))];
        let opt: Option<u64> = __get_field(&fields, "absent", "T").unwrap();
        assert_eq!(opt, None);
        let present: Option<u64> = __get_field(&fields, "present", "T").unwrap();
        assert_eq!(present, Some(7));
        let err = __get_field::<u64>(&fields, "absent", "T").unwrap_err();
        assert!(err.to_string().contains("missing field `absent`"));
    }
}
