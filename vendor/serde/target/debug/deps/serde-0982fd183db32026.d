/root/repo/vendor/serde/target/debug/deps/serde-0982fd183db32026.d: src/lib.rs

/root/repo/vendor/serde/target/debug/deps/serde-0982fd183db32026: src/lib.rs

src/lib.rs:
