/root/repo/vendor/serde/target/debug/deps/serde_derive-17fb0c79d0e71335.d: /root/repo/vendor/serde_derive/src/lib.rs

/root/repo/vendor/serde/target/debug/deps/libserde_derive-17fb0c79d0e71335.so: /root/repo/vendor/serde_derive/src/lib.rs

/root/repo/vendor/serde_derive/src/lib.rs:
