/root/repo/vendor/serde/target/debug/deps/serde-8228bbdf7751280b.d: src/lib.rs

/root/repo/vendor/serde/target/debug/deps/libserde-8228bbdf7751280b.rlib: src/lib.rs

/root/repo/vendor/serde/target/debug/deps/libserde-8228bbdf7751280b.rmeta: src/lib.rs

src/lib.rs:
