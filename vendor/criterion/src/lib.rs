//! Vendored micro-benchmark shim exposing the subset of the `criterion`
//! API this workspace uses: `Criterion`, `benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! The build environment has no network access to crates.io, so the real
//! `criterion` cannot be fetched. This shim measures wall-clock time with
//! `std::time::Instant` — no warm-up modeling, outlier rejection, or HTML
//! reports — and prints a `name/param  median  mean  throughput` line per
//! benchmark. Good enough to rank kernels and spot order-of-magnitude
//! regressions; not a statistics suite.

use std::fmt::Display;
use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let sample_size = self.sample_size;
        println!("\n== {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
            throughput: None,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.label(), self.sample_size, None, &mut f);
    }
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group sharing sample-size / throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Declare per-iteration throughput for benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Run one benchmark that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (droppable no-op, kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Function name plus parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => "bench".to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Passed to benchmark closures; time the hot loop with [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
}

impl Bencher {
    /// Time `f`, called `self.iters` times back to back.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_secs_f64() * 1e9;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Calibrate iterations per sample so one sample costs ~2 ms, capped so
    // slow benchmarks still finish promptly.
    let mut calib = Bencher {
        iters: 1,
        elapsed_ns: 0.0,
    };
    f(&mut calib);
    let per_iter = (calib.elapsed_ns).max(1.0);
    let iters = ((2e6 / per_iter).clamp(1.0, 1e6)) as u64;

    let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed_ns: 0.0,
        };
        f(&mut b);
        samples_ns.push(b.elapsed_ns / iters as f64);
    }
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples_ns[samples_ns.len() / 2];
    let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:>10}/s", si(n as f64 / (median / 1e9))),
        Throughput::Bytes(n) => format!("  {:>9}B/s", si(n as f64 / (median / 1e9))),
    });
    println!(
        "  {label:<44} median {:>12}  mean {:>12}{}",
        fmt_ns(median),
        fmt_ns(mean),
        rate.unwrap_or_default()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn si(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else {
        format!("{x:.1}")
    }
}

/// Define a benchmark harness entry: either
/// `criterion_group!(benches, f1, f2)` or the
/// `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..100 * k).sum::<u64>())
        });
        group.finish();
        c.bench_function("free", |b| b.iter(|| 1 + 1));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = demo
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label(), "x");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }
}
