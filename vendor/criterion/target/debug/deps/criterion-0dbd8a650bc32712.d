/root/repo/vendor/criterion/target/debug/deps/criterion-0dbd8a650bc32712.d: src/lib.rs

/root/repo/vendor/criterion/target/debug/deps/libcriterion-0dbd8a650bc32712.rlib: src/lib.rs

/root/repo/vendor/criterion/target/debug/deps/libcriterion-0dbd8a650bc32712.rmeta: src/lib.rs

src/lib.rs:
