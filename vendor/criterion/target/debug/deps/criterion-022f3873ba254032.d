/root/repo/vendor/criterion/target/debug/deps/criterion-022f3873ba254032.d: src/lib.rs

/root/repo/vendor/criterion/target/debug/deps/criterion-022f3873ba254032: src/lib.rs

src/lib.rs:
