//! Vendored JSON shim exposing the subset of the `serde_json` API this
//! workspace uses: `to_string`, `to_string_pretty`, `from_str`, and
//! `Error`, driven by the vendored `serde` shim's [`serde::Value`] tree.
//!
//! Floats are written with Rust's shortest-exact `Display` and parsed with
//! `FromStr`, so `f64` values round-trip bit exactly; integers round-trip
//! through lossless `u64`/`i64` tokens.

use serde::{de::DeserializeOwned, Number, Serialize, Value};

pub use serde::Value as JsonValue;

/// JSON (de)serialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to an indented (2-space) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            write_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    use std::fmt::Write as _;
    match *n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::Float(v) => {
            if v.is_finite() {
                // Rust Display is shortest-exact and never scientific; add
                // `.0` to integral floats so they parse back as floats.
                let s = format!("{v}");
                out.push_str(&s);
                if !s.contains('.') {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/inf; real serde_json writes null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.parse_keyword("null", Value::Null),
            b't' => self.parse_keyword("true", Value::Bool(true)),
            b'f' => self.parse_keyword("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            _ => self.parse_number(),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.skip_ws();
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(Error::new(format!("expected string at byte {}", self.pos)));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by this
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(Error::new(format!("expected value at byte {start}")));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if v <= i64::MAX as u64 {
                        return Ok(Value::Number(Number::NegInt(-(v as i64))));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let v: f64 = from_str(&to_string(&1.25f64).unwrap()).unwrap();
        assert_eq!(v, 1.25);
        let v: u64 = from_str(&to_string(&(u64::MAX - 1)).unwrap()).unwrap();
        assert_eq!(v, u64::MAX - 1);
        let v: i64 = from_str(&to_string(&-42i64).unwrap()).unwrap();
        assert_eq!(v, -42);
        let v: bool = from_str("true").unwrap();
        assert!(v);
    }

    #[test]
    fn shortest_exact_float_round_trip() {
        for &x in &[0.1f64, 1.0 / 3.0, 6.02e23, 1e-300, -0.0, 4.0] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
    }

    #[test]
    fn containers_round_trip() {
        let xs = vec![1.5f64, -2.25, 3.0];
        let s = to_string_pretty(&xs).unwrap();
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, xs);
        let pairs = vec![("a".to_string(), 1.0f64), ("b".to_string(), 2.0)];
        let back: Vec<(String, f64)> = from_str(&to_string(&pairs).unwrap()).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn string_escapes() {
        let s = "he said \"hi\\bye\"\nline2\ttab\u{1}".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_errors() {
        assert!(from_str::<f64>("").is_err());
        assert!(from_str::<f64>("1.0 garbage").is_err());
        assert!(from_str::<Vec<f64>>("[1.0,").is_err());
        assert!(from_str::<bool>("truthy").is_err());
    }

    #[test]
    fn pretty_output_shape() {
        let v = vec![1.0f64];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  1.0\n]");
    }
}
