/root/repo/vendor/serde_json/target/debug/deps/serde-3ef9544fa2796e64.d: /root/repo/vendor/serde/src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/libserde-3ef9544fa2796e64.rlib: /root/repo/vendor/serde/src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/libserde-3ef9544fa2796e64.rmeta: /root/repo/vendor/serde/src/lib.rs

/root/repo/vendor/serde/src/lib.rs:
