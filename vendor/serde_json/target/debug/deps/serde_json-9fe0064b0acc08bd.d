/root/repo/vendor/serde_json/target/debug/deps/serde_json-9fe0064b0acc08bd.d: src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/serde_json-9fe0064b0acc08bd: src/lib.rs

src/lib.rs:
