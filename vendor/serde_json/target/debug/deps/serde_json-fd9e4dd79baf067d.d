/root/repo/vendor/serde_json/target/debug/deps/serde_json-fd9e4dd79baf067d.d: src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/libserde_json-fd9e4dd79baf067d.rlib: src/lib.rs

/root/repo/vendor/serde_json/target/debug/deps/libserde_json-fd9e4dd79baf067d.rmeta: src/lib.rs

src/lib.rs:
