//! Vendored RNG shim exposing the subset of the `rand` API this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::random::<f64>()`.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be fetched. The generator is xoshiro256++ seeded through
//! SplitMix64 — high quality, deterministic, and stable across platforms
//! (it does not reproduce upstream `StdRng`'s stream, which no test here
//! relies on; tests only require seeded reproducibility).

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core sampling interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods.
pub trait Rng: RngCore {
    /// Sample a value of `T` from its standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the type,
    /// `bool` fair).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable from the standard distribution.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<f64>(), c.random::<f64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.random::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
