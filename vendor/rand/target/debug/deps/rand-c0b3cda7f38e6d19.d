/root/repo/vendor/rand/target/debug/deps/rand-c0b3cda7f38e6d19.d: src/lib.rs

/root/repo/vendor/rand/target/debug/deps/librand-c0b3cda7f38e6d19.rlib: src/lib.rs

/root/repo/vendor/rand/target/debug/deps/librand-c0b3cda7f38e6d19.rmeta: src/lib.rs

src/lib.rs:
