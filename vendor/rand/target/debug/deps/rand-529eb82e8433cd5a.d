/root/repo/vendor/rand/target/debug/deps/rand-529eb82e8433cd5a.d: src/lib.rs

/root/repo/vendor/rand/target/debug/deps/rand-529eb82e8433cd5a: src/lib.rs

src/lib.rs:
