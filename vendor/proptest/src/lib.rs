//! Vendored property-testing shim exposing the subset of the `proptest`
//! API this workspace uses: the `proptest!` macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, range and
//! collection strategies, `Just`, `prop_map`/`prop_flat_map`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! The build environment has no network access to crates.io, so the real
//! `proptest` cannot be fetched. Differences from upstream: sampling is
//! purely random (no structured edge-case bias) and failing cases are
//! *not shrunk* — the failing inputs are reported as drawn. Runs are
//! deterministic: the RNG seed derives from the test function's name.

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! Glob-importable names, mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; draw new ones.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// Deterministic SplitMix64 stream for drawing test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG seeded from a test name (stable across runs and platforms).
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is negligible for the small bounds used in tests.
        self.next_u64() % bound
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then use it to pick a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Reject generated values that fail `f` (retries internally).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// `prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive draws: {}",
            self.reason
        );
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                let unit = rng.unit_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range strategy");
                let unit = rng.unit_f64() as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element count for [`vec`]: an exact size or a `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Run property tests: `proptest! { #![proptest_config(cfg)] #[test] fn
/// name(x in strategy, ...) { body } ... }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_cases {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            while __accepted < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __config.cases.saturating_mul(20).max(1000),
                    "proptest: too many rejected cases in {}",
                    stringify!($name)
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __result {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!("proptest case failed in {}: {}", stringify!($name), __msg);
                    }
                }
            }
        }
    )*};
}

/// Assert inside a `proptest!` body; failure reports the drawn case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Reject the current case (draw a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn int_ranges_in_bounds(x in 3usize..10, y in 0u64..1000) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 1000);
        }

        #[test]
        fn float_ranges_in_bounds(x in -1.5f64..2.5) {
            prop_assert!((-1.5..2.5).contains(&x));
        }

        #[test]
        fn tuples_and_vec(pair in (1usize..5, 0.0f64..1.0), v in crate::collection::vec(0u32..7, 2usize..6)) {
            prop_assert!(pair.0 >= 1 && pair.0 < 5);
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 7));
        }

        #[test]
        fn flat_map_dependent(v in (1usize..8).prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n).prop_map(move |xs| (n, xs)))) {
            let (n, xs) = v;
            prop_assert_eq!(xs.len(), n);
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("seed");
        let mut b = TestRng::deterministic("seed");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failure_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0usize..2) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
