/root/repo/vendor/serde_derive/target/debug/deps/serde_derive-ce20d114082e759c.d: src/lib.rs

/root/repo/vendor/serde_derive/target/debug/deps/libserde_derive-ce20d114082e759c.so: src/lib.rs

src/lib.rs:
