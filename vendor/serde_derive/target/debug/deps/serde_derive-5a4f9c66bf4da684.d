/root/repo/vendor/serde_derive/target/debug/deps/serde_derive-5a4f9c66bf4da684.d: src/lib.rs

/root/repo/vendor/serde_derive/target/debug/deps/serde_derive-5a4f9c66bf4da684: src/lib.rs

src/lib.rs:
