//! Derive macros for the vendored `serde` shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (the build
//! environment cannot fetch `syn`/`quote`). Supports the item shapes this
//! workspace derives on:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, tuple, and struct variants;
//! * no generic parameters, no `#[serde(..)]` attributes.
//!
//! Generated struct deserialization goes through `serde::__get_field`,
//! which maps *absent* fields to `Value::Null` before erroring — so
//! `Option<T>` fields behave as `#[serde(default)]` does upstream (absent
//! key → `None`), which model-persistence and the `lam-serve` HTTP API
//! rely on for optional request fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (shim): renders the type as a `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derive `serde::Deserialize` (shim): rebuilds the type from a
/// `serde::Value`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Cursor over a flat token-tree list.
struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip `#[...]` attributes (incl. doc comments) and visibility.
    fn skip_attrs_and_vis(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1; // '#'
                    if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                    {
                        self.pos += 1; // [...]
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    self.pos += 1; // pub
                    if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        self.pos += 1; // (crate) etc.
                    }
                }
                _ => break,
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected {what}, found {other:?}"),
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs_and_vis();
    let keyword = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("item name");
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    match keyword.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: Kind::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                kind: Kind::TupleStruct(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item {
                name,
                kind: Kind::UnitStruct,
            },
            None => Item {
                name,
                kind: Kind::UnitStruct,
            },
            other => panic!("serde_derive: unexpected token after struct name: {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: Kind::Enum(parse_variants(g.stream())),
            },
            other => panic!("serde_derive: expected enum body, found {other:?}"),
        },
        other => panic!("serde_derive: expected struct or enum, found `{other}`"),
    }
}

/// Parse `name: Type, ...` field lists, returning field names. Commas
/// inside angle brackets (e.g. generic arguments) are not separators.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs_and_vis();
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        // Consume the type: everything until a comma at angle depth 0.
        let mut angle_depth = 0i32;
        loop {
            match c.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let ch = p.as_char();
                    if ch == ',' && angle_depth == 0 {
                        c.pos += 1;
                        break;
                    }
                    if ch == '<' {
                        angle_depth += 1;
                    } else if ch == '>' {
                        angle_depth -= 1;
                    }
                    c.pos += 1;
                }
                Some(_) => c.pos += 1,
            }
        }
    }
    fields
}

/// Count the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) => {
                let ch = p.as_char();
                if ch == ',' && angle_depth == 0 {
                    count += 1;
                    saw_tokens = false;
                    continue;
                }
                if ch == '<' {
                    angle_depth += 1;
                } else if ch == '>' {
                    angle_depth -= 1;
                }
                saw_tokens = true;
            }
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs_and_vis();
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.pos += 1;
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.pos += 1;
                Shape::Tuple(n)
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            c.pos += 1;
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{pushes}])")
        }
        Kind::UnitStruct => "::serde::Value::Object(::std::vec![])".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Kind::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(::std::string::String::from(\"{vname}\")),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: String = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Array(::std::vec![{items}]))]),",
                                binders.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binders = fields.join(", ");
                            let items: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f})),"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Object(::std::vec![{items}]))]),"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let gets: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__get_field(__fields, \"{f}\", \"{name}\")?,"))
                .collect();
            format!(
                "let __fields = __v.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}\", __v))?;\n\
                 ::std::result::Result::Ok({name} {{ {gets} }})"
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let gets: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?,"))
                .collect();
            format!(
                "let __items = __v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}\", __v))?;\n\
                 if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"expected {n} elements for {name}, found {{}}\", __items.len()))); }}\n\
                 ::std::result::Result::Ok({name}({gets}))"
            )
        }
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|v| !matches!(v.shape, Shape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => unreachable!(),
                        Shape::Tuple(1) => format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(__payload)?)),"
                        ),
                        Shape::Tuple(n) => {
                            let gets: String = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__items[{i}])?,")
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{\n\
                                 let __items = __payload.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", \"{name}::{vname}\", __payload))?;\n\
                                 if __items.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"expected {n} elements for {name}::{vname}, found {{}}\", __items.len()))); }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({gets}))\n\
                                 }},"
                            )
                        }
                        Shape::Named(fields) => {
                            let gets: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::__get_field(__inner, \"{f}\", \"{name}::{vname}\")?,"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{\n\
                                 let __inner = __payload.as_object().ok_or_else(|| ::serde::DeError::expected(\"object\", \"{name}::{vname}\", __payload))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{ {gets} }})\n\
                                 }},"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                 }},\n\
                 ::serde::Value::Object(__obj) if __obj.len() == 1 => {{\n\
                 let (__tag, __payload) = &__obj[0];\n\
                 match __tag.as_str() {{\n\
                 {payload_arms}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n\
                 }}\n\
                 }},\n\
                 __other => ::std::result::Result::Err(::serde::DeError::expected(\"string or single-key object\", \"{name}\", __other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
