//! Vendored data-parallelism shim exposing the subset of the `rayon` API
//! this workspace uses, built on `std::thread::scope`.
//!
//! The build environment has no network access to crates.io, so the real
//! `rayon` cannot be fetched. This crate keeps the call sites source
//! compatible while still providing genuine multi-core execution:
//!
//! * `slice.par_iter()` / `vec.par_iter()` (+ `.enumerate()`, `.map(..)`,
//!   `.collect()` into `Vec<T>` or `Result<Vec<T>, E>`, `.for_each(..)`);
//! * `(0..n).into_par_iter()` over `usize` ranges;
//! * `slice.par_chunks_mut(n).enumerate().for_each(..)`;
//! * `ThreadPoolBuilder::new().num_threads(t).build()?.install(..)`.
//!
//! Parallel maps are *order preserving*: results are stitched back in
//! input order, so a parallel map is observably identical to its
//! sequential counterpart for pure per-item functions. Work is handed out
//! in dynamically claimed chunks (atomic cursor), giving load balancing
//! close to rayon's for the coarse-grained loops used here.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceMut,
    };
}

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads the next parallel call may use.
fn current_threads() -> usize {
    POOL_THREADS.with(|c| c.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Run `f(0..n)` across threads, returning results in index order.
fn run_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    // Chunks small enough for balance, large enough to amortize locking.
    let chunk = n.div_ceil(threads * 4).max(1);
    let cursor = AtomicUsize::new(0);
    let parts: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                let end = (start + chunk).min(n);
                let out: Vec<R> = (start..end).map(&f).collect();
                parts.lock().expect("worker panicked").push((start, out));
            });
        }
    });
    let mut parts = parts.into_inner().expect("worker panicked");
    parts.sort_unstable_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(n);
    for (_, mut p) in parts {
        out.append(&mut p);
    }
    out
}

/// An indexed parallel pipeline stage: a random-access source of items.
///
/// Unlike real rayon's producer/consumer machinery, every combinator here
/// is index addressable, which is all the workspace needs and keeps the
/// implementation small.
pub trait ParallelIterator: Sized + Sync {
    /// Item produced at each index.
    type Item: Send;

    /// Number of items.
    fn par_len(&self) -> usize;

    /// Produce the item at `index` (pure; called from worker threads).
    fn par_get(&self, index: usize) -> Self::Item;

    /// Map each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { inner: self, f }
    }

    /// Pair each item with its index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Apply `f` to every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let n = self.par_len();
        run_indexed(n, current_threads(), |i| f(self.par_get(i)));
    }

    /// Collect all items, preserving input order.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }
}

/// Conversion into a parallel iterator (owned sources).
pub trait IntoParallelIterator {
    /// Resulting iterator type.
    type Iter: ParallelIterator;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `.par_iter()` on `&self` borrowing sources (slices, `Vec`s).
pub trait IntoParallelRefIterator<'a> {
    /// Resulting iterator type.
    type Iter: ParallelIterator;
    /// Borrowing parallel iterator over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Parallel iterator over a slice.
pub struct SliceIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn par_len(&self) -> usize {
        self.items.len()
    }
    fn par_get(&self, index: usize) -> Self::Item {
        &self.items[index]
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        SliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        SliceIter { items: self }
    }
}

/// Parallel iterator over a `usize` range.
pub struct RangeIter {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;
    fn par_len(&self) -> usize {
        self.len
    }
    fn par_get(&self, index: usize) -> Self::Item {
        self.start + index
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    fn into_par_iter(self) -> Self::Iter {
        RangeIter {
            start: self.start,
            len: self.end.saturating_sub(self.start),
        }
    }
}

/// Parallel map stage.
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;
    fn par_len(&self) -> usize {
        self.inner.par_len()
    }
    fn par_get(&self, index: usize) -> Self::Item {
        (self.f)(self.inner.par_get(index))
    }
}

/// Parallel enumerate stage.
pub struct Enumerate<I> {
    inner: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn par_len(&self) -> usize {
        self.inner.par_len()
    }
    fn par_get(&self, index: usize) -> Self::Item {
        (index, self.inner.par_get(index))
    }
}

/// Containers a parallel iterator can collect into.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Collect `iter`, preserving item order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        run_indexed(iter.par_len(), current_threads(), |i| iter.par_get(i))
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E>
where
    T: Send,
    E: Send,
{
    fn from_par_iter<I: ParallelIterator<Item = Result<T, E>>>(iter: I) -> Self {
        run_indexed(iter.par_len(), current_threads(), |i| iter.par_get(i))
            .into_iter()
            .collect()
    }
}

/// `.par_chunks_mut(..)` on mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Split into mutable chunks of `chunk_size` (last may be shorter),
    /// processed in parallel.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ChunksMut {
            chunks: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// Mutable-chunk pipeline; only the `enumerate().for_each(..)` shape the
/// workspace uses is provided (mutable borrows cannot be re-produced from
/// a shared `&self`, so this is a separate owned pipeline).
pub struct ChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> ChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut {
            chunks: self.chunks,
        }
    }
}

/// Enumerated mutable chunks.
pub struct EnumerateChunksMut<'a, T> {
    chunks: Vec<&'a mut [T]>,
}

impl<'a, T: Send> EnumerateChunksMut<'a, T> {
    /// Run `f` on every `(index, chunk)` pair in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &'a mut [T])) + Sync,
    {
        let mut work: Vec<Option<(usize, &'a mut [T])>> =
            self.chunks.into_iter().enumerate().map(Some).collect();
        let n = work.len();
        let threads = current_threads().clamp(1, n.max(1));
        if threads <= 1 {
            for item in work.into_iter().flatten() {
                f(item);
            }
            return;
        }
        let queue = Mutex::new(work.iter_mut().collect::<Vec<_>>());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let slot = queue.lock().expect("worker panicked").pop();
                    match slot {
                        Some(slot) => {
                            if let Some(item) = slot.take() {
                                f(item);
                            }
                        }
                        None => break,
                    }
                });
            }
        });
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this shim,
/// but part of the API surface).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Fresh builder with default (machine) parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the pool at `n` threads (`0` = machine default, as in rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count limit; parallel calls made inside
/// [`ThreadPool::install`] use at most the configured thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Run `f` with this pool's thread budget installed.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev =
            POOL_THREADS.with(|c| c.replace(self.num_threads.or_else(|| Some(current_threads()))));
        let guard = RestoreThreads(prev);
        let out = f();
        drop(guard);
        out
    }
}

/// Restores the previous thread budget even if `f` panics.
struct RestoreThreads(Option<usize>);

impl Drop for RestoreThreads {
    fn drop(&mut self) {
        let prev = self.0;
        POOL_THREADS.with(|c| c.set(prev));
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0..257).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 257);
        assert_eq!(squares[256], 256 * 256);
    }

    #[test]
    fn enumerate_indices_match() {
        let xs = vec![10, 20, 30, 40];
        let pairs: Vec<(usize, i32)> = xs.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(pairs, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn collect_result_propagates_error() {
        let xs: Vec<usize> = (0..100).collect();
        let ok: Result<Vec<usize>, String> = xs.par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<usize>, String> = xs
            .par_iter()
            .map(|&x| {
                if x == 50 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn chunks_mut_disjoint_writes() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, i / 10);
        }
    }

    #[test]
    fn pool_install_limits_and_restores() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let before = current_threads();
        let sum: usize = pool
            .install(|| {
                assert_eq!(current_threads(), 2);
                (0..100usize).into_par_iter().map(|x| x).collect::<Vec<_>>()
            })
            .into_iter()
            .sum();
        assert_eq!(sum, 4950);
        assert_eq!(current_threads(), before);
    }
}
