/root/repo/vendor/rayon/target/debug/deps/rayon-f30ae04723cc7f89.d: src/lib.rs

/root/repo/vendor/rayon/target/debug/deps/rayon-f30ae04723cc7f89: src/lib.rs

src/lib.rs:
