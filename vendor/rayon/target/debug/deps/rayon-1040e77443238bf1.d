/root/repo/vendor/rayon/target/debug/deps/rayon-1040e77443238bf1.d: src/lib.rs

/root/repo/vendor/rayon/target/debug/deps/librayon-1040e77443238bf1.rlib: src/lib.rs

/root/repo/vendor/rayon/target/debug/deps/librayon-1040e77443238bf1.rmeta: src/lib.rs

src/lib.rs:
