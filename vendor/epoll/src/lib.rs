//! Vendored epoll shim: the minimal readiness-notification surface the
//! event-driven serve core needs, built directly on the `epoll_create1` /
//! `epoll_ctl` / `epoll_wait` / `eventfd` syscalls.
//!
//! The build environment has no network access to crates.io, so `mio` (or
//! the `libc` crate itself) cannot be fetched. `std` on Linux already
//! links the platform C library, so the four symbols this crate needs are
//! declared `extern "C"` and called through safe wrappers:
//!
//! * [`Epoll`] — owns an epoll instance; `add`/`modify`/`delete` register
//!   interest (`EPOLLIN`/`EPOLLOUT`/`EPOLLRDHUP`) under a caller-chosen
//!   `u64` token, `wait` blocks up to a timeout and fills a caller buffer
//!   with ready events. Level-triggered only — edge-triggered (`EPOLLET`)
//!   is deliberately not exposed: the serve reactor drains sockets until
//!   `WouldBlock` anyway, and level-triggered cannot lose wakeups.
//! * [`EventFd`] — a wakeup doorbell for cross-thread notification:
//!   worker threads `notify()` and the reactor, which has the fd
//!   registered in its epoll set, wakes from `wait` and `drain()`s it.
//!
//! Nonblocking socket setup itself stays on `std` (`TcpListener` /
//! `TcpStream::set_nonblocking`), so this crate never touches `fcntl`.
//!
//! Everything here is Linux-only, which matches the repo's target (the
//! paper's platform study and the CI runner are both Linux).

use std::io;
use std::os::unix::io::RawFd;

/// Readable interest (and readiness).
pub const EPOLLIN: u32 = 0x001;
/// Writable interest (and readiness).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (request it to see half-closes promptly).
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

/// One readiness event, ABI-compatible with the kernel's
/// `struct epoll_event`. On x86-64 the kernel (and glibc) declare the
/// struct packed — `events` at offset 0, `data` at offset 4 — so the
/// Rust mirror must be packed too; other 64-bit targets use natural
/// alignment.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-state bitmask (`EPOLLIN` | `EPOLLOUT` | …).
    pub events: u32,
    /// The token registered with the fd.
    pub data: u64,
}

/// One readiness event (naturally aligned layout on non-x86-64).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-state bitmask (`EPOLLIN` | `EPOLLOUT` | …).
    pub events: u32,
    /// The token registered with the fd.
    pub data: u64,
}

impl EpollEvent {
    /// An empty event (fills `wait` buffers).
    pub const fn zeroed() -> Self {
        Self { events: 0, data: 0 }
    }

    /// Ready-state bitmask. Reading a field of a packed struct through a
    /// reference is UB; this copies it out safely.
    pub fn events(&self) -> u32 {
        let e = *self;
        e.events
    }

    /// The registered token.
    pub fn token(&self) -> u64 {
        let e = *self;
        e.data
    }
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance. Closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Create an epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes a flags int and returns an fd or -1.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Self { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` outlives the call; DEL ignores the event pointer
        // (passed anyway for pre-2.6.9 kernel compatibility, per the man
        // page).
        cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` with `interest`, reporting `token` in its events.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregister `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block until at least one registered fd is ready, `timeout` elapses
    /// (`None` = forever), or a signal lands. Returns the number of
    /// entries filled at the front of `events`. A timeout fills zero.
    /// `EINTR` is retried internally — callers never see it.
    pub fn wait(&self, events: &mut [EpollEvent], timeout: Option<std::time::Duration>) -> usize {
        let timeout_ms: i32 = match timeout {
            None => -1,
            // Round up so a 100µs timeout is not a busy-loop 0.
            Some(d) => d.as_millis().min(i32::MAX as u128).max(1) as i32,
        };
        loop {
            // SAFETY: the buffer pointer/length pair is valid for the
            // call's duration; the kernel writes at most `len` entries.
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len().min(i32::MAX as usize) as i32,
                    timeout_ms,
                )
            };
            if n >= 0 {
                return n as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                // Programming errors (EBADF/EINVAL) cannot be handled by
                // the event loop; surface loudly instead of spinning.
                panic!("epoll_wait failed: {err}");
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` is an fd this struct owns exclusively.
        unsafe { close(self.fd) };
    }
}

/// A cross-thread wakeup doorbell over `eventfd(2)`: any thread calls
/// [`EventFd::notify`], the owner has [`EventFd::as_raw_fd`] registered
/// for `EPOLLIN` and calls [`EventFd::drain`] after waking. Nonblocking,
/// so a drain with no pending notifications returns immediately.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    /// Create a nonblocking eventfd.
    pub fn new() -> io::Result<Self> {
        // SAFETY: eventfd takes (initval, flags), returns an fd or -1.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(Self { fd })
    }

    /// The fd to register for `EPOLLIN` in an [`Epoll`].
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Ring the doorbell. Safe from any thread; never blocks (an eventfd
    /// counter saturating at `u64::MAX - 1` would fail `EAGAIN`, which is
    /// fine — the receiver is already due to wake).
    pub fn notify(&self) {
        let one: u64 = 1;
        // SAFETY: 8 bytes from a live stack value; eventfd writes must be
        // exactly 8 bytes.
        unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
    }

    /// Reset the doorbell; returns `true` if any notification was
    /// pending.
    pub fn drain(&self) -> bool {
        let mut buf = 0u64;
        // SAFETY: 8 writable bytes from a live stack value.
        let n = unsafe { read(self.fd, (&mut buf as *mut u64).cast(), 8) };
        n == 8 && buf > 0
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: `fd` is an fd this struct owns exclusively.
        unsafe { close(self.fd) };
    }
}

// SAFETY: both types are plain fd owners; every syscall they make is
// thread-safe per POSIX.
unsafe impl Send for Epoll {}
unsafe impl Sync for Epoll {}
unsafe impl Send for EventFd {}
unsafe impl Sync for EventFd {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    #[test]
    fn event_struct_layout_matches_kernel_abi() {
        #[cfg(target_arch = "x86_64")]
        assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(std::mem::size_of::<EpollEvent>(), 16);
    }

    #[test]
    fn readiness_reports_the_registered_token() {
        let ep = Epoll::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        ep.add(b.as_raw_fd(), EPOLLIN, 0xDEAD_BEEF).unwrap();

        let mut events = [EpollEvent::zeroed(); 8];
        // Nothing written yet: a short wait times out empty.
        assert_eq!(ep.wait(&mut events, Some(Duration::from_millis(10))), 0);

        a.write_all(b"x").unwrap();
        let n = ep.wait(&mut events, Some(Duration::from_secs(5)));
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 0xDEAD_BEEF);
        assert_ne!(events[0].events() & EPOLLIN, 0);
    }

    #[test]
    fn modify_and_delete_change_the_interest_set() {
        let ep = Epoll::new().unwrap();
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        ep.add(b.as_raw_fd(), EPOLLIN, 1).unwrap();
        a.write_all(b"x").unwrap();

        // Interest swapped to write-only: the pending readable byte no
        // longer wakes us for EPOLLIN (EPOLLOUT fires instead — a unix
        // socket with buffer space is always writable).
        ep.modify(b.as_raw_fd(), EPOLLOUT, 2).unwrap();
        let mut events = [EpollEvent::zeroed(); 8];
        let n = ep.wait(&mut events, Some(Duration::from_secs(5)));
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 2);
        assert_eq!(events[0].events() & EPOLLIN, 0);
        assert_ne!(events[0].events() & EPOLLOUT, 0);

        ep.delete(b.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, Some(Duration::from_millis(10))), 0);
    }

    #[test]
    fn hangup_is_reported_without_being_requested() {
        let ep = Epoll::new().unwrap();
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        ep.add(b.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 7).unwrap();
        drop(a);
        let mut events = [EpollEvent::zeroed(); 8];
        let n = ep.wait(&mut events, Some(Duration::from_secs(5)));
        assert_eq!(n, 1);
        assert_ne!(events[0].events() & (EPOLLHUP | EPOLLRDHUP), 0);
    }

    #[test]
    fn eventfd_wakes_an_epoll_wait_across_threads() {
        let ep = Epoll::new().unwrap();
        let doorbell = std::sync::Arc::new(EventFd::new().unwrap());
        ep.add(doorbell.as_raw_fd(), EPOLLIN, 42).unwrap();

        // Nothing pending: drain is a no-op, wait times out.
        assert!(!doorbell.drain());
        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(ep.wait(&mut events, Some(Duration::from_millis(10))), 0);

        let remote = std::sync::Arc::clone(&doorbell);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            remote.notify();
            remote.notify();
        });
        let n = ep.wait(&mut events, Some(Duration::from_secs(5)));
        assert_eq!(n, 1);
        assert_eq!(events[0].token(), 42);
        t.join().unwrap();
        // Two notifies coalesce into one pending counter; one drain
        // clears it.
        assert!(doorbell.drain());
        assert!(!doorbell.drain());
        assert_eq!(ep.wait(&mut events, Some(Duration::from_millis(10))), 0);
    }
}
