//! Cross-crate integration tests: the full pipeline
//! dataset generation → training → prediction → evaluation, spanning
//! `lam-machine`, `lam-stencil`, `lam-fmm`, `lam-analytical`, `lam-ml`,
//! and `lam-core`.

use lam::analytical::fmm::FmmAnalyticalModel;
use lam::analytical::stencil::BlockedStencilModel;
use lam::core::evaluate::{analytical_mape, evaluate_workload, EvaluationConfig};
use lam::core::hybrid::{HybridConfig, HybridModel};
use lam::core::workload::Workload;
use lam::fmm::workload::FmmWorkload;
use lam::machine::arch::MachineDescription;
use lam::ml::forest::ExtraTreesRegressor;
use lam::ml::metrics::mape;
use lam::ml::model::Regressor;
use lam::ml::sampling::train_test_split_fraction;
use lam::stencil::workload::StencilWorkload;

const TIMESTEPS: usize = 4;

fn machine() -> MachineDescription {
    MachineDescription::blue_waters_xe6()
}

#[test]
fn stencil_pipeline_hybrid_beats_pure_ml_at_small_window() {
    let workload = StencilWorkload::new(machine(), lam::stencil::config::space_grid_only(), 1);
    let data = workload.generate_dataset();
    let (train, test) = train_test_split_fraction(&data, 0.02, 5);

    let mut pure = ExtraTreesRegressor::with_params(60, Default::default(), 2);
    pure.fit(&train).unwrap();
    let pure_mape = mape(test.response(), &pure.predict(&test)).unwrap();

    let mut hybrid = HybridModel::new(
        workload.analytical_model(),
        Box::new(ExtraTreesRegressor::with_params(60, Default::default(), 2)),
        HybridConfig::with_aggregation(),
    );
    hybrid.fit(&train).unwrap();
    let hybrid_mape = mape(test.response(), &hybrid.predict(&test)).unwrap();

    assert!(
        hybrid_mape < pure_mape,
        "hybrid {hybrid_mape:.1}% should beat pure {pure_mape:.1}%"
    );
    assert!(
        hybrid_mape < 15.0,
        "hybrid should be accurate: {hybrid_mape:.1}%"
    );
}

#[test]
fn fmm_pipeline_hybrid_beats_pure_ml() {
    let data = lam::fmm::oracle::generate_dataset(&machine(), &lam::fmm::config::space_small(), 3);
    let (train, test) = train_test_split_fraction(&data, 0.2, 9);

    let mut pure = ExtraTreesRegressor::with_params(60, Default::default(), 4);
    pure.fit(&train).unwrap();
    let pure_mape = mape(test.response(), &pure.predict(&test)).unwrap();

    let mut hybrid = HybridModel::new(
        Box::new(FmmAnalyticalModel::new(machine())),
        Box::new(ExtraTreesRegressor::with_params(60, Default::default(), 4)),
        HybridConfig {
            log_feature: true,
            ..HybridConfig::default()
        },
    );
    hybrid.fit(&train).unwrap();
    let hybrid_mape = mape(test.response(), &hybrid.predict(&test)).unwrap();

    assert!(
        hybrid_mape < pure_mape,
        "hybrid {hybrid_mape:.1}% should beat pure {pure_mape:.1}%"
    );
}

#[test]
fn analytical_models_are_inaccurate_but_correlated() {
    // The §VII regime: blocking AM ~40-60%, FMM AM ~100-250% on our
    // simulated node — far from exact, far from useless.
    let blocking = StencilWorkload::new(machine(), lam::stencil::config::space_grid_blocking(), 7)
        .generate_dataset();
    let am = BlockedStencilModel::new(machine(), TIMESTEPS);
    let m = analytical_mape(&blocking, &am);
    assert!((20.0..90.0).contains(&m), "blocking AM MAPE {m:.1}%");

    let fmm = lam::fmm::oracle::generate_dataset(&machine(), &lam::fmm::config::space_paper(), 7);
    let am = FmmAnalyticalModel::new(machine());
    let m = analytical_mape(&fmm, &am);
    assert!((60.0..400.0).contains(&m), "FMM AM MAPE {m:.1}%");
}

#[test]
fn evaluation_protocol_runs_end_to_end() {
    let workload = StencilWorkload::new(machine(), lam::stencil::config::space_grid_only(), 11);
    let cfg = EvaluationConfig::new(vec![0.02, 0.10], 3, 13);
    let series = evaluate_workload(&workload, &cfg, |seed| {
        Box::new(ExtraTreesRegressor::with_params(
            30,
            Default::default(),
            seed,
        ))
    });
    assert_eq!(series.len(), 2);
    // More training data → lower error (the universal Fig 3 shape).
    assert!(series[1].summary.mean < series[0].summary.mean);
}

#[test]
fn workloads_share_one_generic_pipeline() {
    // The same generic protocol runs over both applications — the
    // refactor's point: scenario-specific code ends at the Workload impl.
    fn mean_mape_at<W: Workload>(workload: &W, fraction: f64) -> f64 {
        let cfg = EvaluationConfig::new(vec![fraction], 3, 17);
        let series = evaluate_workload(workload, &cfg, |seed| {
            Box::new(ExtraTreesRegressor::with_params(
                30,
                Default::default(),
                seed,
            ))
        });
        series[0].summary.mean
    }
    let stencil = StencilWorkload::new(machine(), lam::stencil::config::space_grid_only(), 3);
    let fmm = FmmWorkload::new(machine(), lam::fmm::config::space_small(), 3);
    assert!(mean_mape_at(&stencil, 0.1).is_finite());
    assert!(mean_mape_at(&fmm, 0.2).is_finite());
}

#[test]
fn dataset_round_trips_through_csv_and_json() {
    let data = StencilWorkload::new(machine(), lam::stencil::config::space_grid_only(), 2)
        .generate_dataset();
    let dir = std::env::temp_dir().join("lam_integration_io");
    std::fs::create_dir_all(&dir).unwrap();

    let csv_path = dir.join("stencil.csv");
    lam::data::io::write_csv(&data, &csv_path).unwrap();
    let back = lam::data::io::read_csv(&csv_path).unwrap();
    assert_eq!(back.len(), data.len());
    // CSV stores full f64 precision via Display round-trip.
    for i in 0..data.len() {
        assert_eq!(back.response()[i], data.response()[i]);
    }

    let json_path = dir.join("stencil.json");
    lam::data::io::write_json(&data, &json_path).unwrap();
    let back: lam::data::Dataset = lam::data::io::read_json(&json_path).unwrap();
    assert_eq!(back, data);
}

#[test]
fn fitted_model_serializes_and_restores() {
    let data = StencilWorkload::new(machine(), lam::stencil::config::space_grid_only(), 4)
        .generate_dataset();
    let (train, test) = train_test_split_fraction(&data, 0.1, 1);
    let mut model = ExtraTreesRegressor::with_params(20, Default::default(), 6);
    model.fit(&train).unwrap();
    let json = serde_json::to_string(&model).unwrap();
    let restored: ExtraTreesRegressor = serde_json::from_str(&json).unwrap();
    for i in 0..test.len().min(50) {
        assert_eq!(
            model.predict_row(test.row(i)),
            restored.predict_row(test.row(i))
        );
    }
}

#[test]
fn real_stencil_kernel_agrees_with_itself_under_tuning() {
    // The *runnable* application: every tuning configuration computes the
    // same numerical answer (blocking/unroll/threads change time only).
    use lam::stencil::config::StencilConfig;
    use lam::stencil::grid::Grid3;
    use lam::stencil::kernel::{run, Coefficients};
    let mut g = Grid3::new(20, 18, 16, 1);
    g.fill_with(|x, y, z| ((x * 3 + y * 5 + z * 7) % 9) as f64);
    let reference = run(
        &g,
        Coefficients::default(),
        &StencilConfig::unblocked(20, 18, 16),
        3,
    );
    for cfg in [
        StencilConfig {
            bi: 4,
            bj: 4,
            bk: 4,
            unroll: 3,
            ..StencilConfig::unblocked(20, 18, 16)
        },
        StencilConfig {
            threads: 4,
            ..StencilConfig::unblocked(20, 18, 16)
        },
    ] {
        let out = run(&g, Coefficients::default(), &cfg, 3);
        assert_eq!(out.data(), reference.data());
    }
}

#[test]
fn real_fmm_validates_against_direct_sum() {
    use lam::fmm::accuracy::{direct_potentials, relative_l2_error};
    use lam::fmm::exec::Fmm;
    use lam::fmm::particle::random_cube;
    let ps = random_cube(1024, 77);
    let fmm = Fmm::new(5, 32, 2);
    let err = relative_l2_error(&fmm.potentials(&ps), &direct_potentials(&ps));
    assert!(err < 5e-3, "relative L2 error {err}");
}
