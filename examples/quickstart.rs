//! Quickstart: build a hybrid performance model in ~30 lines.
//!
//! Generates the paper's stencil grid-size dataset on a simulated Blue
//! Waters node, trains a hybrid (analytical + extra trees) model on 2% of
//! it, and compares its accuracy against a pure-ML model trained on the
//! same 2%.
//!
//! Run: `cargo run --release --example quickstart`

use lam::core::hybrid::{HybridConfig, HybridModel};
use lam::core::workload::Workload;
use lam::machine::arch::MachineDescription;
use lam::ml::forest::ExtraTreesRegressor;
use lam::ml::metrics::mape;
use lam::ml::model::Regressor;
use lam::ml::sampling::train_test_split_fraction;
use lam::stencil::config::space_grid_only;
use lam::stencil::workload::StencilWorkload;

fn main() {
    // 1. Ground truth: "measured" execution times for 729 grid sizes.
    let machine = MachineDescription::blue_waters_xe6();
    let workload = StencilWorkload::new(machine, space_grid_only(), 42);
    let data = workload.generate_dataset();
    println!(
        "dataset: {} configurations, features {:?}",
        data.len(),
        data.feature_names()
    );

    // 2. Train on a 2% window, evaluate on the remaining 98%.
    let (train, test) = train_test_split_fraction(&data, 0.02, 7);
    println!(
        "training on {} samples, testing on {}",
        train.len(),
        test.len()
    );

    // 3. Pure machine learning.
    let mut pure = ExtraTreesRegressor::new(1);
    pure.fit(&train).expect("fit pure model");
    let pure_mape = mape(test.response(), &pure.predict(&test)).unwrap();

    // 4. Hybrid: the analytical model's prediction becomes an extra
    //    feature; predictions are aggregated with the analytical model.
    //    The workload supplies the matching analytical model.
    let mut hybrid = HybridModel::new(
        workload.analytical_model(),
        Box::new(ExtraTreesRegressor::new(1)),
        HybridConfig::with_aggregation(),
    );
    hybrid.fit(&train).expect("fit hybrid model");
    let hybrid_mape = mape(test.response(), &hybrid.predict(&test)).unwrap();

    println!("pure extra trees : MAPE {pure_mape:.1}%");
    println!("hybrid           : MAPE {hybrid_mape:.1}%");
    assert!(
        hybrid_mape < pure_mape,
        "the hybrid model should win at this training size"
    );
    println!("hybrid wins with only {} training samples.", train.len());
}
