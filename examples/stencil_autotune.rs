//! Autotuning a stencil's loop blocking with `lam-tune` — the workload
//! the paper's introduction motivates, now one library call: the
//! active-learning loop measures a ~3% sample, refits the hybrid, and
//! spends a ≤ 5%-of-the-space budget on model-proposed measurements.
//!
//! The search layer this example used to hand-roll (sample → fit →
//! rank → compare against the oracle) lives in `lam_tune::active_learn`;
//! see `crates/tune` and the README's "Autotuning quickstart".
//!
//! Run: `cargo run --release --example stencil_autotune`

use lam::prelude::*;

fn main() {
    // The paper's Fig 3A/6 blocking space, as registered in the workload
    // catalog (same machine and noise seed as the serving layer).
    let entry = WorkloadId::get("stencil-grid-blocking")
        .expect("builtin scenario")
        .entry();
    let space = entry.workload().space_size();
    let budget = space / 20; // ≤ 5% of the space, initial sample included
    println!("blocking space: {space} configurations; budget: {budget} measurements");

    let mut report = active_learn(
        entry.workload(),
        &ActiveLearnOptions {
            budget,
            initial_fraction: 0.03,
            ..ActiveLearnOptions::default()
        },
    )
    .expect("active learning runs");

    // Regret against the full oracle sweep (the tuner itself never saw it).
    report.attach_regret(entry.dataset().response());
    let best = &report.best;
    println!(
        "recommended blocking (config #{}): features {:?}",
        best.index, best.features
    );
    println!(
        "  measured time {:.3} ms after {} evaluations",
        best.oracle.expect("recommendation is measured") * 1e3,
        report.evaluations
    );
    let regret = report.regret.expect("full dataset attached");
    println!(
        "  true best {:.3} ms -> regret {:.2}x",
        report.true_best.unwrap() * 1e3,
        regret
    );
    assert!(
        regret < 1.5,
        "hybrid-guided tuning should land within 50% of the optimum"
    );
}
