//! Autotuning with a hybrid model: pick the best loop-blocking
//! configuration for a stencil *without* measuring every candidate.
//!
//! This is the workload the paper's introduction motivates: the blocking
//! space is too large to measure exhaustively, a pure ML model needs too
//! many samples, and the analytical model alone is ~50% off. The hybrid
//! model trained on a 3% sample ranks configurations well enough to find a
//! near-optimal blocking.
//!
//! Run: `cargo run --release --example stencil_autotune`

use lam::core::hybrid::{HybridConfig, HybridModel};
use lam::core::workload::Workload;
use lam::machine::arch::MachineDescription;
use lam::ml::forest::ExtraTreesRegressor;
use lam::ml::model::Regressor;
use lam::ml::sampling::train_test_split_fraction;
use lam::stencil::config::space_grid_blocking;
use lam::stencil::workload::StencilWorkload;

fn main() {
    let machine = MachineDescription::blue_waters_xe6();
    let workload = StencilWorkload::new(machine, space_grid_blocking(), 2024);
    let space = workload.space().clone();
    let data = workload.generate_dataset();
    let oracle = workload.oracle();

    // "Measure" only 3% of the space.
    let (train, _) = train_test_split_fraction(&data, 0.03, 5);
    println!(
        "blocking space: {} configurations; measured sample: {}",
        space.len(),
        train.len()
    );

    let mut model = HybridModel::new(
        workload.analytical_model(),
        Box::new(ExtraTreesRegressor::new(3)),
        HybridConfig::default(),
    );
    model.fit(&train).expect("fit hybrid");

    // Rank every candidate for one target grid by *predicted* time.
    let target = (1usize, 128usize, 128usize);
    let mut candidates: Vec<(usize, f64)> = space
        .configs()
        .iter()
        .enumerate()
        .filter(|(_, c)| (c.i, c.j, c.k) == target)
        .map(|(idx, c)| {
            let x = space.features.project(c);
            (idx, model.predict_row(&x))
        })
        .collect();
    candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite predictions"));

    // Compare the predicted-best block against the true best and worst.
    let truth: Vec<(usize, f64)> = space
        .configs()
        .iter()
        .enumerate()
        .filter(|(_, c)| (c.i, c.j, c.k) == target)
        .map(|(idx, c)| (idx, oracle.execution_time(c)))
        .collect();
    let true_best = truth
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    let true_worst = truth
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    let chosen = candidates[0].0;
    let chosen_time = oracle.execution_time(&space.configs()[chosen]);

    let cfg = &space.configs()[chosen];
    println!(
        "target grid {}x{}x{}: predicted-best blocking = {}x{}x{}",
        target.0, target.1, target.2, cfg.bi, cfg.bj, cfg.bk
    );
    println!(
        "  actual time of chosen blocking: {:.3} ms",
        chosen_time * 1e3
    );
    println!("  true best  : {:.3} ms", true_best.1 * 1e3);
    println!("  true worst : {:.3} ms", true_worst.1 * 1e3);
    let regret = chosen_time / true_best.1;
    println!("  regret vs true best: {:.2}x", regret);
    assert!(
        regret < 1.5,
        "hybrid-guided tuning should land within 50% of the optimum"
    );
    assert!(chosen_time < true_worst.1 * 0.5, "and far from the worst");
}
