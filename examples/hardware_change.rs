//! Hardware change (the paper's closing claim): because the hybrid model
//! needs only a small training window, it adapts cheaply when the machine
//! changes. We move from the Blue Waters node to a laptop-class machine,
//! retrain both models on a 2% window of the *new* machine's data, and
//! compare. The analytical model is re-instantiated from the new machine
//! description alone — no extra measurements.
//!
//! The example also demonstrates real wall-clock measurement of the
//! runnable stencil kernel on *this* host.
//!
//! Run: `cargo run --release --example hardware_change`

use lam::core::hybrid::{HybridConfig, HybridModel};
use lam::core::workload::Workload;
use lam::machine::arch::MachineDescription;
use lam::ml::forest::ExtraTreesRegressor;
use lam::ml::metrics::mape;
use lam::ml::model::Regressor;
use lam::ml::sampling::train_test_split_fraction;
use lam::stencil::config::{space_grid_only, StencilConfig};
use lam::stencil::measure::measure_config;
use lam::stencil::workload::StencilWorkload;

fn evaluate_on(machine: MachineDescription, label: &str) -> (f64, f64) {
    let workload = StencilWorkload::new(machine, space_grid_only(), 77);
    let data = workload.generate_dataset();
    let (train, test) = train_test_split_fraction(&data, 0.02, 3);

    let mut pure = ExtraTreesRegressor::new(5);
    pure.fit(&train).expect("fit pure");
    let pure_mape = mape(test.response(), &pure.predict(&test)).unwrap();

    let mut hybrid = HybridModel::new(
        workload.analytical_model(),
        Box::new(ExtraTreesRegressor::new(5)),
        HybridConfig::with_aggregation(),
    );
    hybrid.fit(&train).expect("fit hybrid");
    let hybrid_mape = mape(test.response(), &hybrid.predict(&test)).unwrap();

    println!("{label}: pure ML {pure_mape:.1}%  |  hybrid {hybrid_mape:.1}%  (2% training window)");
    (pure_mape, hybrid_mape)
}

fn main() {
    println!("retraining after a hardware change, 2% training window each:\n");
    let (_, h_bw) = evaluate_on(MachineDescription::blue_waters_xe6(), "Blue Waters XE6 ");
    let (p_lap, h_lap) = evaluate_on(MachineDescription::laptop_x86(), "laptop x86-64   ");
    assert!(
        h_lap < p_lap,
        "hybrid should transfer better than pure ML on the new machine"
    );
    assert!(h_bw < 20.0 && h_lap < 20.0, "hybrid stays accurate on both");

    // Bonus: one genuine wall-clock measurement of the runnable kernel on
    // this very machine (whatever it is).
    let cfg = StencilConfig::unblocked(96, 96, 96);
    let seconds = measure_config(&cfg, 4, 3);
    println!(
        "\nreal measured 96^3 stencil, 4 sweeps on this host: {:.2} ms",
        seconds * 1e3
    );
}
