//! SpMV — the third scenario: place the kernel on the Blue Waters
//! roofline, run the real CSR kernel once, then pick a row-block size
//! with a thin `lam-tune` call (successive halving guided by a served
//! hybrid model).
//!
//! The hand-rolled train-and-rank logic this example used to carry lives
//! in `lam_tune` now (see `crates/tune` and the README's "Autotuning
//! quickstart").
//!
//! Run: `cargo run --release --example spmv_tuning`

use lam::analytical::spmv::SpmvRooflineModel;
use lam::machine::roofline::Roofline;
use lam::prelude::*;
use lam::spmv::kernel::{spmv_parallel, FLOPS_PER_NNZ};
use lam::spmv::matrix::banded;
use lam::tune::by_name;

fn main() {
    let machine = MachineDescription::blue_waters_xe6();

    // 1. Where does SpMV sit on the roofline? ~2 flops per ~12.5 bytes:
    //    far left of the ridge, firmly memory-bound.
    let roofline = Roofline::per_core(&machine);
    let ai = SpmvRooflineModel::intensity(65_536.0, 9.0);
    println!(
        "SpMV arithmetic intensity {:.3} flop/B vs ridge {:.3} flop/B -> {}",
        ai,
        roofline.ridge(),
        if roofline.memory_bound(ai) {
            "memory-bound"
        } else {
            "compute-bound"
        }
    );

    // 2. The kernel is real: apply a banded matrix once and count flops.
    let a = banded(65_536, 4, 7);
    let x: Vec<f64> = (0..a.n).map(|i| 1.0 + (i % 3) as f64).collect();
    let mut y = vec![0.0; a.n];
    spmv_parallel(&a, &x, &mut y, 1024);
    println!(
        "applied {}x{} band matrix: {} nnz, {:.1} Mflop per sweep",
        a.n,
        a.n,
        a.nnz(),
        a.nnz() as f64 * FLOPS_PER_NNZ / 1e6
    );

    // 3. Tune the (rows, nnz, rb, t) space: train-or-load the hybrid
    //    through the registry, then successive-halve under a tiny budget.
    let id = WorkloadId::get("spmv").expect("builtin scenario");
    let model = ModelRegistry::new(ModelRegistry::default_root())
        .get(ModelKey::new(id, ModelKind::Hybrid, 1))
        .expect("train-or-load hybrid");
    let tuner = by_name("halving").expect("builtin strategy");
    let mut report = tuner
        .tune(
            id.entry().workload(),
            &*model,
            &lam::tune::TuneRequest {
                budget: 24,
                top_k: 3,
                ..lam::tune::TuneRequest::default()
            },
        )
        .expect("halving runs");
    report.attach_regret(id.entry().dataset().response());

    println!(
        "halving over {} configs: best #{} {:?} at {:.4} ms ({} evaluations, regret {:.2}x)",
        report.space_size,
        report.best.index,
        report.best.features,
        report.best.oracle.unwrap() * 1e3,
        report.evaluations,
        report.regret.unwrap()
    );
    for (rank, cfg) in report.top.iter().enumerate() {
        println!(
            "  top-{}: #{:<4} predicted {:.4} ms {:?}",
            rank + 1,
            cfg.index,
            cfg.predicted * 1e3,
            cfg.features
        );
    }
}
