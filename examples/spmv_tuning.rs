//! SpMV — the third scenario, end to end: place the kernel on the Blue
//! Waters roofline, run the real CSR kernel once, train the hybrid
//! (roofline + extra trees) on a slice of the tuning space, and use it to
//! pick a row-block size.
//!
//! Run: `cargo run --release --example spmv_tuning`

use lam::analytical::spmv::SpmvRooflineModel;
use lam::core::hybrid::{HybridConfig, HybridModel};
use lam::core::workload::Workload;
use lam::machine::arch::MachineDescription;
use lam::machine::roofline::Roofline;
use lam::ml::forest::ExtraTreesRegressor;
use lam::ml::model::Regressor;
use lam::ml::sampling::train_test_split_fraction;
use lam::spmv::config::{space_spmv, SpmvConfig};
use lam::spmv::kernel::{spmv_parallel, FLOPS_PER_NNZ};
use lam::spmv::matrix::banded;
use lam::spmv::workload::SpmvWorkload;

fn main() {
    let machine = MachineDescription::blue_waters_xe6();

    // 1. Where does SpMV sit on the roofline? ~2 flops per ~12.5 bytes:
    //    far left of the ridge, firmly memory-bound.
    let roofline = Roofline::per_core(&machine);
    let ai = SpmvRooflineModel::intensity(65_536.0, 9.0);
    println!(
        "SpMV arithmetic intensity {:.3} flop/B vs ridge {:.3} flop/B -> {}",
        ai,
        roofline.ridge(),
        if roofline.memory_bound(ai) {
            "memory-bound"
        } else {
            "compute-bound"
        }
    );

    // 2. The kernel is real: apply a banded matrix once and count flops.
    let a = banded(65_536, 4, 7);
    let x: Vec<f64> = (0..a.n).map(|i| 1.0 + (i % 3) as f64).collect();
    let mut y = vec![0.0; a.n];
    spmv_parallel(&a, &x, &mut y, 1024);
    println!(
        "applied {}x{} band matrix: {} nnz, {:.1} Mflop per sweep",
        a.n,
        a.n,
        a.nnz(),
        a.nnz() as f64 * FLOPS_PER_NNZ / 1e6
    );

    // 3. Train the hybrid on 10% of the (rows, nnz, rb, t) space.
    let workload = SpmvWorkload::new(machine, space_spmv(), 99);
    let data = workload.generate_dataset();
    let (train, _) = train_test_split_fraction(&data, 0.10, 11);
    let mut model = HybridModel::new(
        workload.analytical_model(),
        Box::new(ExtraTreesRegressor::new(8)),
        HybridConfig {
            log_feature: true,
            ..HybridConfig::default()
        },
    );
    model.fit(&train).expect("fit hybrid");

    // 4. Tune: best row block for a 131072-row, 17-nnz matrix on 8 threads?
    println!("predicted runtime for rows=131072, nnz=17, t=8 as rb varies:");
    let mut best = (0usize, f64::INFINITY);
    for &rb in &[64usize, 1024, 16_384] {
        let cfg = SpmvConfig {
            rows: 131_072,
            band: 8,
            row_block: rb,
            threads: 8,
        };
        let pred = model.predict_row(&cfg.features());
        let actual = workload.oracle().execution_time(&cfg);
        println!("  rb = {rb:>6}: predicted {pred:.6} s  (oracle {actual:.6} s)");
        if pred < best.1 {
            best = (rb, pred);
        }
    }
    println!("hybrid picks rb = {}", best.0);
}
