//! Serving quickstart: persist a trained hybrid model, serve it over
//! HTTP on a random port, and query it — all offline, in one process.
//!
//! Run: `cargo run --release --example serve_predict`

use lam::serve::http::{self, PredictRequest, PredictResponse, ServerOptions};
use lam::serve::loadgen::HttpClient;
use lam::serve::persist::ModelKind;
use lam::serve::registry::{ModelKey, ModelRegistry};
use lam::serve::workload::WorkloadId;
use std::sync::Arc;

fn wid(name: &str) -> WorkloadId {
    WorkloadId::get(name).expect("builtin workload")
}

fn main() {
    // 1. Resolve the model through the registry: trains + persists under
    //    results/models/ on first run, loads the JSON artifact afterwards.
    let registry = Arc::new(ModelRegistry::new(ModelRegistry::default_root()));
    let key = ModelKey::new(wid("fmm-small"), ModelKind::Hybrid, 1);
    let model = registry.get(key).expect("train or load hybrid model");
    println!(
        "model {key}: {} features, artifact at {}",
        model.feature_names.len(),
        registry.path_for(key).display()
    );

    // 2. Serve it. Port 0 binds a random free port.
    let handle = http::start(
        Arc::clone(&registry),
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            ..ServerOptions::default()
        },
    )
    .expect("server starts");
    let addr = handle.local_addr().to_string();
    println!("serving on http://{addr}");

    // 3. Query it over real HTTP: batched rows, answered in order.
    let rows = wid("fmm-small").sample_rows(8);
    let request = PredictRequest {
        workload: key.workload.to_string(),
        kind: key.kind.to_string(),
        version: Some(key.version),
        rows: rows.clone(),
    };
    let mut client = HttpClient::connect(&addr).expect("client connects");
    let body = serde_json::to_string(&request).expect("request serializes");
    let (status, response) = client.post("/predict", &body).expect("request round-trips");
    assert_eq!(status, 200, "{response}");
    let response: PredictResponse = serde_json::from_str(&response).expect("response parses");
    for (row, prediction) in rows.iter().zip(&response.predictions) {
        println!("  (t, N, q, k) = {row:?}  ->  {prediction:.6} s");
    }

    // 4. The same batch again is pure cache hits.
    let (_, warm) = client.post("/predict", &body).expect("second request");
    let warm: PredictResponse = serde_json::from_str(&warm).expect("response parses");
    println!(
        "second call: {}/{} rows from the prediction cache in {}us",
        warm.cache_hits,
        rows.len(),
        warm.micros
    );

    handle.stop();
    println!("server stopped cleanly.");
}
