//! FMM parameter tuning (the paper's §VII-B scenario): choose the leaf
//! population `q` and gauge the cost of raising the expansion order `k`
//! using a hybrid model, and cross-check the *real* FMM implementation's
//! accuracy-order tradeoff.
//!
//! Run: `cargo run --release --example fmm_tuning`

use lam::core::hybrid::{HybridConfig, HybridModel};
use lam::core::workload::Workload;
use lam::fmm::accuracy::{direct_potentials, relative_l2_error};
use lam::fmm::config::{space_paper, FmmConfig};
use lam::fmm::exec::Fmm;
use lam::fmm::particle::random_cube;
use lam::fmm::workload::FmmWorkload;
use lam::machine::arch::MachineDescription;
use lam::ml::forest::ExtraTreesRegressor;
use lam::ml::model::Regressor;
use lam::ml::sampling::train_test_split_fraction;

fn main() {
    let machine = MachineDescription::blue_waters_xe6();
    let workload = FmmWorkload::new(machine, space_paper(), 99);
    let data = workload.generate_dataset();
    let oracle = workload.oracle();

    // Train the hybrid on 20% of the (t, N, q, k) space.
    let (train, _) = train_test_split_fraction(&data, 0.20, 11);
    let mut model = HybridModel::new(
        workload.analytical_model(),
        Box::new(ExtraTreesRegressor::new(8)),
        HybridConfig {
            log_feature: true,
            ..HybridConfig::default()
        },
    );
    model.fit(&train).expect("fit hybrid");

    // Question 1: best q for N = 16384, k = 8, t = 8?
    println!("predicted runtime for N=16384, k=8, t=8 as q varies:");
    let mut best = (0usize, f64::INFINITY);
    for &q in &[32usize, 64, 128, 256] {
        let cfg = FmmConfig {
            t: 8,
            n: 16384,
            q,
            k: 8,
        };
        let pred = model.predict_row(&cfg.features());
        let actual = oracle.execution_time(&cfg);
        println!(
            "  q = {q:>3}: predicted {:.1} ms, actual {:.1} ms",
            pred * 1e3,
            actual * 1e3
        );
        if pred < best.1 {
            best = (q, pred);
        }
    }
    println!("model recommends q = {}", best.0);

    // Question 2: how much does each expansion order cost, and what
    // accuracy does it buy? Run the *real* FMM for the accuracy half.
    let particles = random_cube(4096, 17);
    let exact = direct_potentials(&particles);
    println!("\ncost/accuracy frontier at N=4096, q=64, t=1:");
    for k in [2usize, 4, 6] {
        let cfg = FmmConfig {
            t: 1,
            n: 4096,
            q: 64,
            k,
        };
        let pred_time = model.predict_row(&cfg.features());
        let phi = Fmm::new(k, 64, 1).potentials(&particles);
        let err = relative_l2_error(&phi, &exact);
        println!(
            "  k = {k}: predicted {:.2} ms on Blue Waters, measured L2 error {err:.2e}",
            pred_time * 1e3
        );
    }
    println!("\nhigher order buys accuracy at a k^6 runtime cost — the tradeoff");
    println!("the hybrid model lets you navigate without running the sweep.");
}
