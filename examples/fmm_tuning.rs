//! FMM parameter tuning (the paper's §VII-B scenario) as a thin
//! `lam-tune` call, cross-checked against the *real* FMM implementation's
//! accuracy-order tradeoff.
//!
//! The hand-rolled train-and-rank logic this example used to carry lives
//! in `lam_tune` now (see `crates/tune` and the README's "Autotuning
//! quickstart"); what remains here is the part only the FMM can answer:
//! what accuracy does the recommended expansion order actually buy?
//!
//! Run: `cargo run --release --example fmm_tuning`

use lam::fmm::accuracy::{direct_potentials, relative_l2_error};
use lam::fmm::exec::Fmm;
use lam::fmm::particle::random_cube;
use lam::prelude::*;

fn main() {
    // Tune the paper's (t, N, q, k) space with the active-learning loop:
    // measure ~3%, refit the hybrid, spend ≤ 5% of the space total.
    let entry = WorkloadId::get("fmm").expect("builtin scenario").entry();
    let space = entry.workload().space_size();
    let budget = (space / 20).max(8);
    let mut report = active_learn(
        entry.workload(),
        &ActiveLearnOptions {
            budget,
            ..ActiveLearnOptions::default()
        },
    )
    .expect("active learning runs");
    report.attach_regret(entry.dataset().response());

    println!(
        "FMM space: {space} configs; best after {} measurements: #{} {:?}",
        report.evaluations, report.best.index, report.best.features
    );
    println!(
        "  measured {:.2} ms, regret {:.2}x vs true best",
        report.best.oracle.unwrap() * 1e3,
        report.regret.unwrap()
    );

    // The model ranks runtime; the real FMM answers what each expansion
    // order buys in accuracy. Run it.
    let particles = random_cube(4096, 17);
    let exact = direct_potentials(&particles);
    println!("\ncost/accuracy frontier at N=4096, q=64 (real FMM):");
    for k in [2usize, 4, 6] {
        let phi = Fmm::new(k, 64, 1).potentials(&particles);
        let err = relative_l2_error(&phi, &exact);
        println!("  k = {k}: measured L2 error {err:.2e}");
    }
    println!("\nhigher order buys accuracy at a k^6 runtime cost — the tradeoff");
    println!("lam-tune lets you navigate without running the sweep.");
}
