//! Model selection with cross-validated grid search: pick hyperparameters
//! for the hybrid's ML base on a new application *before* spending the
//! measurement budget.
//!
//! Run: `cargo run --release --example model_selection`

use lam::core::hybrid::{HybridConfig, HybridModel};
use lam::core::workload::Workload;
use lam::machine::arch::MachineDescription;
use lam::ml::ensemble::GradientBoostingRegressor;
use lam::ml::forest::ExtraTreesRegressor;
use lam::ml::model::Regressor;
use lam::ml::sampling::train_test_split_fraction;
use lam::ml::tree::{MaxFeatures, TreeParams};
use lam::ml::tuning::grid_search;
use lam::stencil::config::space_grid_blocking;
use lam::stencil::workload::StencilWorkload;

fn main() {
    let machine = MachineDescription::blue_waters_xe6();
    let workload = StencilWorkload::new(machine, space_grid_blocking(), 7);
    let data = workload.generate_dataset();
    // Only 4% of the space is "measured"; all tuning happens inside it.
    let (train, test) = train_test_split_fraction(&data, 0.04, 21);
    println!(
        "tuning on {} measured configs ({} held out for the final check)",
        train.len(),
        test.len()
    );

    // 1. Grid-search the extra-trees leaf size with 4-fold CV.
    let leaf_candidates = vec![1usize, 2, 5, 10];
    let ranked = grid_search(&train, leaf_candidates, 4, 3, |&leaf, seed| {
        let params = TreeParams {
            min_samples_leaf: leaf,
            max_features: MaxFeatures::All,
            ..TreeParams::default()
        };
        Box::new(ExtraTreesRegressor::with_params(100, params, seed))
    })
    .expect("grid search");
    println!("\nextra-trees min_samples_leaf, by cross-validated MAPE:");
    for p in &ranked {
        println!("  leaf = {:>2}: CV MAPE {:.1}%", p.params, p.cv_mape);
    }
    let best_leaf = ranked[0].params;

    // 2. Compare tuned-ET hybrid against a boosting-based hybrid.
    let am = || workload.analytical_model();
    let params = TreeParams {
        min_samples_leaf: best_leaf,
        ..TreeParams::default()
    };
    let mut et_hybrid = HybridModel::new(
        am(),
        Box::new(ExtraTreesRegressor::with_params(100, params, 5)),
        HybridConfig::default(),
    );
    et_hybrid.fit(&train).expect("fit ET hybrid");
    let mut gb_hybrid = HybridModel::new(
        am(),
        Box::new(GradientBoostingRegressor::new(300, 0.1, 5)),
        HybridConfig::default(),
    );
    gb_hybrid.fit(&train).expect("fit GB hybrid");

    let score =
        |m: &dyn Regressor| lam::ml::metrics::mape(test.response(), &m.predict(&test)).unwrap();
    let et_mape = score(&et_hybrid);
    let gb_mape = score(&gb_hybrid);
    println!("\nheld-out MAPE: hybrid(extra trees, leaf={best_leaf}) {et_mape:.1}%");
    println!("held-out MAPE: hybrid(gradient boosting)      {gb_mape:.1}%");
    println!(
        "selected base: {}",
        if et_mape <= gb_mape {
            "extra trees"
        } else {
            "gradient boosting"
        }
    );
}
